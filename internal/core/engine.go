package core

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/fault"
	"repro/internal/ilm"
	"repro/internal/imrs"
	"repro/internal/imrsgc"
	"repro/internal/index/btree"
	"repro/internal/index/hash"
	"repro/internal/pack"
	"repro/internal/rid"
	"repro/internal/ridmap"
	"repro/internal/row"
	"repro/internal/storage/buffer"
	"repro/internal/storage/colseg"
	"repro/internal/storage/disk"
	"repro/internal/storage/heap"
	"repro/internal/txn"
	"repro/internal/wal"
)

// indexRT is the runtime of one index: its definition, the page-based
// B-tree spanning both stores, and the optional IMRS hash fast path.
type indexRT struct {
	def  *catalog.Index
	tree *btree.Tree
	hash *hash.Index
}

// partRT is the runtime of one partition: catalog entry, page-store
// heap, and ILM monitoring state.
type partRT struct {
	cat  *catalog.Partition
	heap *heap.Heap
	ilm  *ilm.PartitionState
}

// tableRT is the runtime of one table.
type tableRT struct {
	cat     *catalog.Table
	parts   []*partRT
	indexes []*indexRT
}

// Engine is the hybrid-storage database engine.
type Engine struct {
	cfg Config

	cat     *catalog.Catalog
	dataDev disk.Device
	pool    *buffer.Pool
	syslog  *wal.Log // redo/undo log for the page store ("syslogs")
	imrslog *wal.Log // redo-only log for the IMRS ("sysimrslogs")
	imrsGen uint64   // sysimrslogs generation (bumped by compaction)

	store  *imrs.Store
	cold   *colseg.Store
	rmap   *ridmap.Map
	locks  *txn.LockManager
	clock  *txn.Clock
	snaps  *txn.SnapshotRegistry
	gc     *imrsgc.GC
	queues *pack.QueueSet
	ilmReg *ilm.Registry
	tsf    *ilm.TSF
	tuner  *ilm.Tuner
	packer *pack.Packer

	mu     sync.RWMutex // guards tables/parts maps
	tables map[string]*tableRT
	byID   map[uint32]*tableRT
	parts  map[rid.PartitionID]*partRT

	// ckptMu quiesces the engine for checkpoints: every transaction
	// holds it shared for its lifetime; Checkpoint takes it exclusively.
	ckptMu sync.RWMutex

	nextTxnID atomic.Uint64
	closed    atomic.Bool

	// coldEnabled gates the write side of the columnar cold store (the
	// packer freezing rows into segments). The read side (e.cold) is
	// always wired: recovery must be able to rebuild segments logged
	// before a restart that flipped the knob off.
	coldEnabled       bool
	unfreezes         atomic.Int64 // cold rows pulled back by updates

	// legacyAlloc selects the pre-pooling per-transaction allocation
	// behaviour (Config.LegacyTxnAlloc). Benchmark baseline only.
	legacyAlloc bool

	ckptStop chan struct{}
	ckptDone chan struct{}

	// Checkpoint outcome accounting: background-loop failures used to be
	// silently discarded, which let a persistently failing checkpoint
	// stop bounding recovery time forever. checkpointLocked counts every
	// outcome; after ckptFailThreshold consecutive failures the sticky
	// error surfaces on the next Checkpoint() or Close() call.
	ckptCompleted  atomic.Int64
	ckptFailed     atomic.Int64
	ckptFailMu     sync.Mutex
	ckptConsecFail int
	ckptLastErr    error

	// recovery records the phases of the last recovery run (recovery.go);
	// written before Open returns, copied into Stats afterwards.
	recovery recoveryInfo

	// twopc is the cross-shard commit accounting (twopc.go).
	twopc twopcCounters

	// decMu guards decIndex, the in-memory index of every 2PC decision
	// this engine knows about — its own RecDecide records (as
	// coordinator) plus decisions written back by peers (NoteDecision).
	// Keyed by (coordinator shard, gid): gids are only unique per
	// coordinator. Populated at recovery and on every LogDecision /
	// NoteDecision.
	decMu    sync.RWMutex
	decIndex map[decisionKey]bool

	// inDoubtMu guards inDoubtPending: in-doubt prepared transactions
	// recovery could not resolve, retained so the node-level resolver
	// can finish the job at runtime and un-park the engine (twopc.go).
	inDoubtMu      sync.Mutex
	inDoubtPending []InDoubtTxn

	// health is the engine state machine (health.go); the retriers wrap
	// the data device, both WAL flush paths, and the background
	// checkpoint (all nil when Config.DisableRetry).
	health      healthFSM
	devRetrier  *fault.Retrier
	walRetrier  *fault.Retrier
	ckptRetrier *fault.Retrier

	ownsDevices bool
}

// ckptFailThreshold is how many consecutive background checkpoint
// failures arm the sticky error surfaced by Checkpoint()/Close().
const ckptFailThreshold = 3

// Open creates or re-opens a database. When the underlying storage
// already holds data (file directory, or reused devices/backends), the
// engine recovers: it loads the last checkpoint's catalog, redoes
// committed page-store work from syslogs, replays sysimrslogs into the
// IMRS, and rebuilds all indexes.
func Open(cfg Config) (*Engine, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		rmap:   ridmap.New(),
		clock:  &txn.Clock{},
		snaps:  txn.NewSnapshotRegistry(),
		locks:  txn.NewLockManager(cfg.LockTimeout),
		queues: pack.NewQueueSet(),
		ilmReg: ilm.NewRegistry(),
		tables: make(map[string]*tableRT),
		byID:   make(map[uint32]*tableRT),
		parts:  make(map[rid.PartitionID]*partRT),
	}
	e.nextTxnID.Store(1)
	e.store = imrs.NewStore(cfg.IMRSCacheBytes)
	e.cold = colseg.NewStore()
	e.coldEnabled = !cfg.DisableColdStore

	if err := e.openStorage(); err != nil {
		return nil, err
	}
	e.health.init(e.applyDegraded)
	if !cfg.DisableRetry {
		newRetrier := func() *fault.Retrier {
			r := fault.NewRetrier(cfg.Retry)
			if cfg.RetrySleep != nil {
				r.Sleep = cfg.RetrySleep
			}
			return r
		}
		e.devRetrier = newRetrier()
		e.devRetrier.OnExhausted = func(err error) {
			e.health.setCause(causeDeviceFaults, true, err.Error())
		}
		e.devRetrier.OnRecovered = func() {
			e.health.setCause(causeDeviceFaults, false, "")
		}
		e.dataDev = disk.WithRetry(e.dataDev, e.devRetrier)
		e.walRetrier = newRetrier()
		e.syslog.SetRetrier(e.walRetrier)
		e.imrslog.SetRetrier(e.walRetrier)
		e.ckptRetrier = newRetrier()
	}

	pool, err := buffer.NewPool(e.dataDev, cfg.BufferPoolPages, func(lsn uint64) error {
		return e.syslog.Flush(lsn)
	})
	if err != nil {
		return nil, err
	}
	pool.SetNoSteal(true)
	e.pool = pool

	e.tsf = ilm.NewTSF(cfg.ILM, cfg.IMRSCacheBytes)
	e.tuner = ilm.NewTuner(cfg.ILM, e.ilmReg, cfg.IMRSCacheBytes, func(id rid.PartitionID) ilm.PartitionUsage {
		st := e.store.Part(id)
		return ilm.PartitionUsage{Rows: st.Rows.Load(), Bytes: st.Bytes.Load()}
	})
	e.gc = imrsgc.New(e.store, e.snaps, imrsgc.Hooks{
		OnReclaimEntry: e.reclaimEntry,
		OnNewRow:       e.queues.Enqueue,
	})
	if cfg.SingleFlightGC {
		e.gc.SetSingleFlight(true)
	}
	e.legacyAlloc = cfg.LegacyTxnAlloc
	e.packer = pack.New(cfg.ILM, e.store, e.queues, e.ilmReg, e.tsf, e.tuner,
		e.clock, (*relocator)(e), cfg.PackInterval, cfg.PackThreads)
	if e.coldEnabled {
		// One pack transaction = one cold segment.
		e.packer.SetBatchSize(cfg.ColdSegmentRows)
	}
	// Cache pressure (the reject backstop tripping) and repeated pack
	// relocation failures both degrade the engine; each clears when its
	// condition does.
	e.packer.OnOverload = func(over bool) {
		e.health.setCause(causeCachePressure, over, "imrs cache past the reject watermark")
	}
	e.packer.OnRelocStreak = func(streak int64, err error) {
		if streak >= packFailThreshold {
			e.health.setCause(causePackErrors, true,
				fmt.Sprintf("%d consecutive pack relocation failures, last: %v", streak, err))
		} else if streak == 0 {
			e.health.setCause(causePackErrors, false, "")
		}
	}

	if err := e.recover(); err != nil {
		return nil, err
	}

	// Start the group-commit pipelines only after recovery, which may
	// have swapped e.imrslog to a compacted generation.
	e.startGroupCommit(e.syslog)
	e.startGroupCommit(e.imrslog)

	e.gc.Start(cfg.GCWorkers)
	if cfg.ILMEnabled {
		e.packer.Start()
	}
	if cfg.CheckpointEvery > 0 {
		e.ckptStop = make(chan struct{})
		e.ckptDone = make(chan struct{})
		go e.checkpointLoop(cfg.CheckpointEvery)
	}
	return e, nil
}

func (e *Engine) checkpointLoop(every time.Duration) {
	defer close(e.ckptDone)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-e.ckptStop:
			return
		case <-tick.C:
			if e.health.load() >= StateReadOnly {
				// A poisoned WAL fails every checkpoint; don't spin the
				// failure counter against a condition that cannot clear.
				continue
			}
			if err := e.checkpoint(); err != nil {
				e.ckptFailMu.Lock()
				n := e.ckptConsecFail
				e.ckptFailMu.Unlock()
				log.Printf("core: background checkpoint failed (%d consecutive): %v", n, err)
			}
		}
	}
}

func (e *Engine) stopCheckpointLoop() {
	if e.ckptStop != nil {
		close(e.ckptStop)
		<-e.ckptDone
		e.ckptStop = nil
	}
}

func (e *Engine) openStorage() error {
	cfg := &e.cfg
	if cfg.Dir != "" {
		dev, err := disk.OpenFileDevice(filepath.Join(cfg.Dir, "data.db"))
		if err != nil {
			return err
		}
		sb, err := wal.OpenFileBackend(filepath.Join(cfg.Dir, "syslogs.log"))
		if err != nil {
			dev.Close()
			return err
		}
		ib, err := wal.OpenFileBackend(filepath.Join(cfg.Dir, "sysimrslogs.log"))
		if err != nil {
			dev.Close()
			sb.Close()
			return err
		}
		cfg.DataDevice, cfg.SysLogBackend, cfg.IMRSLogBackend = dev, sb, ib
		if cfg.IMRSLogFactory == nil {
			dir := cfg.Dir
			cfg.IMRSLogFactory = func(gen uint64, fresh bool) (wal.Backend, error) {
				if gen == 0 {
					return wal.OpenFileBackend(filepath.Join(dir, "sysimrslogs.log"))
				}
				path := filepath.Join(dir, fmt.Sprintf("sysimrslogs.%d.log", gen))
				if fresh {
					_ = os.Remove(path) // clear any orphaned prior attempt
				}
				return wal.OpenFileBackend(path)
			}
		}
		e.ownsDevices = true
	}
	if cfg.DataDevice == nil {
		cfg.DataDevice = disk.NewMemDevice(cfg.ReadLatency, cfg.WriteLatency)
		e.ownsDevices = true
	}
	// The log-device cost model applies only to backends the engine
	// creates itself: explicitly provided backends (tests wiring faulty
	// or cloned media) and file backends pay their own real costs.
	slowLog := func(b wal.Backend) wal.Backend {
		if cfg.LogSyncLatency > 0 || cfg.LogBandwidthBytesPerSec > 0 {
			return wal.NewSlowBackend(b, cfg.LogSyncLatency, cfg.LogBandwidthBytesPerSec)
		}
		return b
	}
	if cfg.SysLogBackend == nil {
		cfg.SysLogBackend = slowLog(wal.NewMemBackend())
	}
	if cfg.IMRSLogBackend == nil {
		cfg.IMRSLogBackend = slowLog(wal.NewMemBackend())
	}
	e.dataDev = cfg.DataDevice
	var err error
	if e.syslog, err = wal.NewLog(cfg.SysLogBackend); err != nil {
		return err
	}
	if e.imrslog, err = wal.NewLog(cfg.IMRSLogBackend); err != nil {
		return err
	}
	return nil
}

// startGroupCommit launches the commit pipeline on l per configuration.
func (e *Engine) startGroupCommit(l *wal.Log) {
	if e.cfg.DisableGroupCommit {
		return
	}
	l.StartGroupCommit(wal.GroupCommitConfig{
		MaxDelay:      e.cfg.CommitCoalesceDelay,
		MaxBatchBytes: e.cfg.CommitMaxBatchBytes,
	})
}

// Halt stops background workers without checkpointing or closing the
// storage — it simulates a crash for recovery tests: durable state is
// exactly what the logs and data device already hold. When the engine
// was already ReadOnly (a WAL poisoned), that sticky root cause is
// returned so callers shutting down learn the engine had died before
// the halt; a healthy halt returns nil.
func (e *Engine) Halt() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.stopCheckpointLoop()
	if e.cfg.ILMEnabled {
		e.packer.Stop()
	}
	e.gc.Stop()
	// Abort (not Stop) the flusher goroutines: no final flush runs,
	// committers still queued get wal.ErrHalted and roll back, and the
	// commit path stays dead afterwards — the durable state is exactly
	// what a crash at this instant would leave.
	e.syslog.AbortGroupCommit()
	e.imrslog.AbortGroupCommit()
	var err error
	if ro := e.health.readOnlyCause(); ro != nil {
		err = &ReadOnlyError{Cause: ro}
	}
	e.health.halt("halt")
	return err
}

// Close checkpoints and shuts the engine down. Shutdown is best-effort
// and always runs to completion — logs and devices are closed even
// after earlier steps fail — and the returned error aggregates every
// failure via errors.Join (errors.Is sees each). An engine that is
// ReadOnly reports its sticky root cause (errors.Is(err, ErrReadOnly))
// and skips the final checkpoint, which could never succeed against a
// poisoned WAL. See doc.go for the shutdown contract.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.stopCheckpointLoop()
	if e.cfg.ILMEnabled {
		e.packer.Stop()
	}
	e.gc.Stop()
	var errs []error
	errs = append(errs, e.takeCheckpointFailure())
	if ro := e.health.readOnlyCause(); ro != nil {
		errs = append(errs, &ReadOnlyError{Cause: ro})
	} else {
		errs = append(errs, e.checkpoint())
	}
	errs = append(errs, e.syslog.Close(), e.imrslog.Close())
	if e.ownsDevices {
		errs = append(errs, e.dataDev.Close())
	}
	e.health.halt("close")
	return errors.Join(errs...)
}

// ReleaseStorage closes a halted engine's log and device handles.
// Halt deliberately leaves them open (it simulates a crash, and
// crash-media tests reuse the backends across incarnations), but a
// node restarting a Dir-backed shard in place must release the old
// incarnation's file descriptors before the new one opens the same
// paths. Only valid after Halt/Close.
func (e *Engine) ReleaseStorage() error {
	if !e.closed.Load() {
		return fmt.Errorf("core: release storage: engine still running")
	}
	var errs []error
	// CloseBackend, not Close: a halted log's buffered tail must NOT be
	// flushed — its committers were already told they failed.
	errs = append(errs, e.syslog.CloseBackend(), e.imrslog.CloseBackend())
	if e.ownsDevices {
		errs = append(errs, e.dataDev.Close())
	}
	return errors.Join(errs...)
}

// Clock exposes the database commit timestamp (harness, tests).
func (e *Engine) Clock() *txn.Clock { return e.clock }

// Store exposes the IMRS store (harness, tests).
func (e *Engine) Store() *imrs.Store { return e.store }

// ColdStore exposes the columnar cold store (harness, tests).
func (e *Engine) ColdStore() *colseg.Store { return e.cold }

// Packer exposes the pack subsystem (harness, tests).
func (e *Engine) Packer() *pack.Packer { return e.packer }

// Tuner exposes the auto-partition tuner (harness, tests).
func (e *Engine) Tuner() *ilm.Tuner { return e.tuner }

// TSF exposes the timestamp filter (harness, tests).
func (e *Engine) TSF() *ilm.TSF { return e.tsf }

// Queues exposes the pack queue set (harness: Figure 8 analysis).
func (e *Engine) Queues() *pack.QueueSet { return e.queues }

// ILMState returns the ILM partition state for a partition id.
func (e *Engine) ILMState(id rid.PartitionID) *ilm.PartitionState { return e.ilmReg.Get(id) }

// BufferPool exposes the buffer cache (harness, tests).
func (e *Engine) BufferPool() *buffer.Pool { return e.pool }

// Catalog exposes table metadata.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// CreateTable creates a table with an implicit unique primary-key index
// (with IMRS hash fast path) plus any secondary indexes, and checkpoints
// so the DDL is durable.
func (e *Engine) CreateTable(name string, schema *row.Schema, pkCols []string,
	spec catalog.PartitionSpec, indexes []catalog.IndexSpec) (*catalog.Table, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	t, err := e.cat.CreateTable(name, schema, pkCols, spec, indexes)
	if err != nil {
		return nil, err
	}
	if _, err := e.mountTable(t, true); err != nil {
		return nil, err
	}
	if err := e.checkpoint(); err != nil {
		return nil, err
	}
	return t, nil
}

// DropTable removes a table: the catalog entry disappears (with its
// partition ids tombstoned so recovery skips their log records), the
// runtime unmounts, live IMRS entries and pack queues for its
// partitions are released, and a checkpoint makes the drop durable —
// crash before the checkpoint and the table simply still exists.
//
// The engine quiesces transactions (the checkpoint lock, held shared by
// every transaction and pack relocation for its lifetime) for the
// unmount+purge window, so no in-flight transaction can observe a
// half-dropped table. On-disk heap and index pages of the dropped table
// are not reclaimed (there is no page free list); they become garbage
// the next log compaction no longer references.
func (e *Engine) DropTable(name string) error {
	if e.closed.Load() {
		return ErrEngineClosed
	}
	e.ckptMu.Lock()
	t, err := e.cat.DropTable(name)
	if err != nil {
		e.ckptMu.Unlock()
		return err
	}
	droppedParts := make(map[rid.PartitionID]bool, len(t.Partitions))
	for _, p := range t.Partitions {
		droppedParts[p.ID] = true
	}
	e.mu.Lock()
	delete(e.tables, name)
	delete(e.byID, t.ID)
	for id := range droppedParts {
		delete(e.parts, id)
	}
	e.mu.Unlock()
	// Release the table's live IMRS footprint: unlink from the pack
	// queues, unpublish from the RID map, and free the row versions.
	// Retired (deleted) entries already in the GC pipeline are not in
	// the RID map and flow out through normal reclamation.
	var victims []*imrs.Entry
	e.rmap.Range(func(r rid.RID, en *imrs.Entry) bool {
		if droppedParts[r.Partition()] {
			victims = append(victims, en)
		}
		return true
	})
	for _, en := range victims {
		e.queues.Remove(en)
		e.rmap.Delete(en.RID, en)
		e.store.RemoveEntry(en)
	}
	for id := range droppedParts {
		e.queues.DropPartition(id)
		e.ilmReg.Unregister(id)
	}
	e.ckptMu.Unlock()
	return e.checkpoint()
}

// mountTable builds the runtime for a catalog table. When fresh is true,
// new B-trees are allocated; otherwise trees are loaded from persisted
// roots (recovery re-news them separately).
func (e *Engine) mountTable(t *catalog.Table, fresh bool) (*tableRT, error) {
	rt := &tableRT{cat: t}
	for _, p := range t.Partitions {
		var h *heap.Heap
		if fresh {
			h = heap.New(p.ID, e.pool)
		} else {
			h = heap.Restore(p.ID, e.pool, p.FirstPage, p.LastPage)
		}
		ps := e.ilmReg.Register(p.ID, p.Name())
		ps.ContentionFn = h.Contention.Load
		if !e.cfg.ILMEnabled {
			// ILM_OFF: everything goes to (and stays in) the IMRS.
			ps.Pin(true)
		}
		prt := &partRT{cat: p, heap: h, ilm: ps}
		rt.parts = append(rt.parts, prt)
	}
	for _, def := range t.Indexes {
		var tr *btree.Tree
		var err error
		if fresh {
			tr, err = btree.New(e.pool)
			if err != nil {
				return nil, err
			}
			def.Root = tr.Root()
		} else {
			tr = btree.Load(e.pool, def.Root)
		}
		tr.SetCoarse(e.cfg.CoarseIndexLatch)
		ix := &indexRT{def: def, tree: tr}
		if def.Hash && !e.cfg.DisableHashIndex {
			ix.hash = hash.New(e.cfg.HashIndexBuckets)
		}
		rt.indexes = append(rt.indexes, ix)
	}
	// Feed B+tree latch contention into each partition's ILM signal
	// alongside the heap latch waits (paper Section V-D). The closure
	// reads ix.tree at sample time rather than capturing the trees:
	// recovery swaps fresh trees into the indexRTs after mounting.
	indexWaits := func() int64 {
		var n int64
		for _, ix := range rt.indexes {
			n += ix.tree.LatchWaits()
		}
		return n
	}
	for _, prt := range rt.parts {
		prt.ilm.IndexContentionFn = indexWaits
	}
	e.mu.Lock()
	e.tables[t.Name] = rt
	e.byID[t.ID] = rt
	for _, prt := range rt.parts {
		e.parts[prt.cat.ID] = prt
	}
	e.mu.Unlock()
	return rt, nil
}

// PinTable applies the user override the paper's conclusion sketches:
// inMemory=true pins every partition of the table fully in-memory (the
// tuner never disables it); inMemory=false pins it out of the IMRS.
func (e *Engine) PinTable(name string, inMemory bool) error {
	rt, err := e.table(name)
	if err != nil {
		return err
	}
	for _, p := range rt.parts {
		p.ilm.Pin(inMemory)
	}
	return nil
}

// UnpinTable removes any user override, returning the table's
// partitions to auto-tuning control.
func (e *Engine) UnpinTable(name string) error {
	rt, err := e.table(name)
	if err != nil {
		return err
	}
	for _, p := range rt.parts {
		p.ilm.Unpin()
	}
	return nil
}

// table resolves a table runtime by name.
func (e *Engine) table(name string) (*tableRT, error) {
	e.mu.RLock()
	rt := e.tables[name]
	e.mu.RUnlock()
	if rt == nil {
		return nil, fmt.Errorf("core: no such table %q", name)
	}
	return rt, nil
}

func (e *Engine) partByID(id rid.PartitionID) *partRT {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.parts[id]
}

// Checkpoint quiesces transactions, flushes both logs and all dirty
// pages, and embeds a catalog snapshot in syslogs. IMRS data is NOT
// written out — it recovers purely from sysimrslogs (paper Section II).
// If the background checkpoint loop has been failing repeatedly, the
// pending sticky error is surfaced here first (and cleared, so this
// explicit retry gets a fresh attempt on the next call).
func (e *Engine) Checkpoint() error {
	if err := e.takeCheckpointFailure(); err != nil {
		return err
	}
	return e.checkpoint()
}

// checkpoint is the internal entry point (background loop, CreateTable):
// it never consumes the sticky background-failure error, which is
// reserved for the user-facing Checkpoint/Close calls.
func (e *Engine) checkpoint() error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	return e.checkpointLocked()
}

// takeCheckpointFailure returns (and clears) the sticky error once
// ckptFailThreshold consecutive checkpoints have failed.
func (e *Engine) takeCheckpointFailure() error {
	e.ckptFailMu.Lock()
	defer e.ckptFailMu.Unlock()
	if e.ckptConsecFail < ckptFailThreshold || e.ckptLastErr == nil {
		return nil
	}
	err := fmt.Errorf("core: %d consecutive background checkpoints failed, last: %w",
		e.ckptConsecFail, e.ckptLastErr)
	e.ckptConsecFail = 0
	e.ckptLastErr = nil
	return err
}

// noteCheckpoint records a checkpoint attempt's outcome and feeds the
// health FSM: a ckptFailThreshold streak degrades the engine (cleared
// by the next success), and a failure caused by WAL poisoning forces
// ReadOnly.
func (e *Engine) noteCheckpoint(err error) {
	if err == nil {
		e.ckptCompleted.Add(1)
		e.ckptFailMu.Lock()
		e.ckptConsecFail = 0
		e.ckptLastErr = nil
		e.ckptFailMu.Unlock()
		e.health.setCause(causeCheckpoint, false, "")
		return
	}
	e.ckptFailed.Add(1)
	e.ckptFailMu.Lock()
	e.ckptConsecFail++
	streak := e.ckptConsecFail
	e.ckptLastErr = err
	e.ckptFailMu.Unlock()
	if streak >= ckptFailThreshold {
		e.health.setCause(causeCheckpoint, true,
			fmt.Sprintf("%d consecutive checkpoint failures, last: %v", streak, err))
	}
	e.notePoison() // callers hold ckptMu exclusively
}

func (e *Engine) checkpointLocked() (err error) {
	defer func() { e.noteCheckpoint(err) }()
	// The retrier covers transient failures that escaped the lower
	// retry layers (or arose between them); exhausted/permanent errors
	// pass straight through.
	return e.ckptRetrier.Do(e.checkpointBody)
}

func (e *Engine) checkpointBody() error {
	// Update persisted heap chains and index roots.
	e.mu.RLock()
	for _, rt := range e.tables {
		for _, p := range rt.parts {
			p.cat.FirstPage, p.cat.LastPage = p.heap.Pages()
		}
		for _, ix := range rt.indexes {
			ix.def.Root = ix.tree.Root()
		}
	}
	e.mu.RUnlock()

	if err := e.syslog.FlushAll(); err != nil {
		return err
	}
	if err := e.imrslog.FlushAll(); err != nil {
		return err
	}
	if err := e.pool.FlushAll(); err != nil {
		return err
	}
	blob, err := e.cat.EncodeSnapshot()
	if err != nil {
		return err
	}
	// The checkpoint record also pins the current sysimrslogs generation
	// (in TxnID): recovery opens exactly that generation, which is what
	// makes log compaction crash-atomic.
	rec := wal.Record{Type: wal.RecCheckpoint, TxnID: e.imrsGen, CommitTS: e.clock.Now(), After: blob}
	lsn, err := e.syslog.Append(&rec)
	if err != nil {
		return err
	}
	return e.syslog.Flush(lsn)
}

// reclaimEntry is the GC hook: unpublish a dead entry everywhere before
// its memory is released.
func (e *Engine) reclaimEntry(en *imrs.Entry) {
	e.rmap.Delete(en.RID, en)
	e.queues.Remove(en)
	// Hash index entries are removed by the commit paths that killed the
	// entry (delete/pack); nothing further here.
}
