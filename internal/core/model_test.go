package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/row"
)

// TestEngineAgainstModel drives the engine with a long random operation
// sequence, mirroring every committed mutation into a plain map, with
// the packer stepped throughout so rows keep moving between stores.
// At the end (and again after a crash + recovery) the engine must agree
// with the model on every key, on full scans, and on the secondary
// index.
func TestEngineAgainstModel(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(st.config(func(c *Config) {
		c.IMRSCacheBytes = 512 << 10 // small: pack constantly relocates
		c.PackInterval = time.Hour   // stepped manually for determinism
		c.ILM.InitialTSF = 5
		c.ILM.PackCyclePct = 0.30
	}))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)

	type mrow struct {
		name string
		qty  int64
	}
	model := map[int64]mrow{}
	rng := rand.New(rand.NewSource(99))
	const keys = 400

	for step := 0; step < 6000; step++ {
		id := int64(1 + rng.Intn(keys))
		tx := e.Begin()
		switch op := rng.Intn(10); {
		case op < 4: // insert
			name := fmt.Sprintf("name-%d-%d", id, step)
			err := tx.Insert("items", itemRow(id, name, int64(step)))
			_, exists := model[id]
			switch {
			case exists && err != ErrDuplicateKey:
				t.Fatalf("step %d: insert of existing key %d: err=%v", step, id, err)
			case !exists && err != nil:
				t.Fatalf("step %d: insert %d failed: %v", step, id, err)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if !exists {
				model[id] = mrow{name: name, qty: int64(step)}
			}
		case op < 7: // update
			var newName string
			ok, err := tx.Update("items", pk(id), func(r row.Row) (row.Row, error) {
				newName = fmt.Sprintf("upd-%d-%d", id, step)
				r[1] = row.String(newName)
				r[2] = row.Int64(r[2].Int() + 1)
				return r, nil
			})
			if err != nil {
				t.Fatalf("step %d: update %d: %v", step, id, err)
			}
			if _, exists := model[id]; exists != ok {
				t.Fatalf("step %d: update %d found=%v, model=%v", step, id, ok, exists)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			if ok {
				m := model[id]
				m.name = newName
				m.qty++
				model[id] = m
			}
		case op < 9: // get
			rw, ok, err := tx.Get("items", pk(id))
			if err != nil {
				t.Fatalf("step %d: get %d: %v", step, id, err)
			}
			m, exists := model[id]
			if ok != exists {
				t.Fatalf("step %d: get %d found=%v, model=%v", step, id, ok, exists)
			}
			if ok && (rw[1].Str() != m.name || rw[2].Int() != m.qty) {
				t.Fatalf("step %d: get %d = (%s,%d), model (%s,%d)",
					step, id, rw[1].Str(), rw[2].Int(), m.name, m.qty)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		default: // delete
			ok, err := tx.Delete("items", pk(id))
			if err != nil {
				t.Fatalf("step %d: delete %d: %v", step, id, err)
			}
			if _, exists := model[id]; exists != ok {
				t.Fatalf("step %d: delete %d found=%v, model=%v", step, id, ok, exists)
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			delete(model, id)
		}

		if step%200 == 199 {
			sleepMs(3) // GC queue maintenance
			for i := 0; i < 100; i++ {
				e.Clock().Tick() // age rows so the TSF packs them
			}
			e.Packer().Step()
		}
	}

	verify := func(label string, eng *Engine) {
		t.Helper()
		tx := eng.Begin()
		defer func() { _ = tx.Commit() }()
		for id := int64(1); id <= keys; id++ {
			rw, ok, err := tx.Get("items", pk(id))
			if err != nil {
				t.Fatalf("%s: get %d: %v", label, id, err)
			}
			m, exists := model[id]
			if ok != exists {
				t.Fatalf("%s: key %d found=%v, model=%v", label, id, ok, exists)
			}
			if ok && (rw[1].Str() != m.name || rw[2].Int() != m.qty) {
				t.Fatalf("%s: key %d = (%s,%d), model (%s,%d)",
					label, id, rw[1].Str(), rw[2].Int(), m.name, m.qty)
			}
		}
		seen := 0
		if err := tx.ScanTable("items", func(r row.Row) bool {
			id := r[0].Int()
			m, exists := model[id]
			if !exists {
				t.Fatalf("%s: scan surfaced deleted key %d", label, id)
			}
			if r[1].Str() != m.name {
				t.Fatalf("%s: scan key %d stale name", label, id)
			}
			seen++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if seen != len(model) {
			t.Fatalf("%s: scan saw %d rows, model has %d", label, seen, len(model))
		}
		// Secondary index agrees for a sample of keys.
		for i := 0; i < 50; i++ {
			id := int64(1 + rng.Intn(keys))
			m, exists := model[id]
			if !exists {
				continue
			}
			rows, err := tx.LookupAll("items", "items_name", []row.Value{row.String(m.name)})
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, r := range rows {
				if r[0].Int() == id {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: secondary index lost key %d (name %s)", label, id, m.name)
			}
		}
	}

	verify("live", e)

	// Crash and recover on the same storage: durable state must equal
	// the model exactly (every mutation committed before the crash).
	e.Halt()
	e2, err := Open(st.config(func(c *Config) {
		c.IMRSCacheBytes = 8 << 20
	}))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer e2.Close()
	verify("recovered", e2)
}
