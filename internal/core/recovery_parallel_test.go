package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/imrs"
	"repro/internal/rid"
	"repro/internal/row"
	"repro/internal/storage/disk"
	"repro/internal/wal"
)

// gatedBackend wraps a wal.Backend and fails Append while the gate is
// closed — the fault injector for the checkpoint-failure tests.
type gatedBackend struct {
	wal.Backend
	fail atomic.Bool
}

var errGateClosed = errors.New("injected append failure")

func (g *gatedBackend) Append(p []byte) (int64, error) {
	if g.fail.Load() {
		return 0, errGateClosed
	}
	return g.Backend.Append(p)
}

// createPartitionedItems creates the items table hash-partitioned on id.
func createPartitionedItems(t *testing.T, e *Engine, parts int) {
	t.Helper()
	_, err := e.CreateTable("items", testSchema(), []string{"id"},
		catalog.PartitionSpec{Kind: catalog.PartitionHash, Column: "id", NumPartitions: parts},
		[]catalog.IndexSpec{{Name: "items_name", Cols: []string{"name"}, Unique: false}})
	if err != nil {
		t.Fatal(err)
	}
}

// recoveryFingerprint reduces an engine's recovered state to a string:
// every visible row, store/RID-map/clock counters, per-index entry
// counts, and the exact order and access stamps of every pack queue.
// Two recoveries of the same storage must produce identical strings.
func recoveryFingerprint(t *testing.T, e *Engine) string {
	t.Helper()
	var b strings.Builder

	tx := e.Begin()
	var rows []string
	if err := tx.ScanTable("items", func(rw row.Row) bool {
		rows = append(rows, fmt.Sprintf("%d|%s|%d", rw[0].Int(), rw[1].Str(), rw[2].Int()))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	sort.Strings(rows)

	fmt.Fprintf(&b, "rows=%d clock=%d storeRows=%d rmapLive=%d\n",
		len(rows), e.Clock().Now(), e.Store().Rows(), e.rmap.Len())

	rt, err := e.table("items")
	if err != nil {
		t.Fatal(err)
	}
	for _, ix := range rt.indexes {
		n, err := ix.tree.Count()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "index %s count=%d\n", ix.def.Name, n)
	}
	for _, prt := range rt.parts {
		trio := e.Queues().PartitionQueues(prt.cat.ID)
		for o := 0; o < imrs.NumOrigins; o++ {
			fmt.Fprintf(&b, "queue %d/%d:", prt.cat.ID, o)
			if trio != nil {
				trio[o].Walk(func(en *imrs.Entry) bool {
					fmt.Fprintf(&b, " %d@%d", uint64(en.RID), en.LastAccess())
					return true
				})
			}
			b.WriteByte('\n')
		}
	}
	for _, r := range rows {
		b.WriteString(r)
		b.WriteByte('\n')
	}

	rec := e.Stats().Recovery
	fmt.Fprintf(&b, "recovery indexed=%d enqueued=%d imrsRecords=%d reclaimed=%d\n",
		rec.RowsIndexed, rec.EntriesEnqueued, rec.IMRSRecords, rec.EntriesReclaimed)
	return b.String()
}

// TestParallelRecoveryEquivalence is the serial-vs-parallel property
// test: a randomized workload over a hash-partitioned table (IMRS rows,
// page-store rows, mixed migrations, aborts, and an in-flight loser at
// the crash) is recovered with one worker and with eight, and the
// recovered states must be identical down to pack-queue order.
func TestParallelRecoveryEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			st := newSharedStorage()
			e, err := Open(st.config(nil))
			if err != nil {
				t.Fatal(err)
			}
			createPartitionedItems(t, e, 8)
			rng := rand.New(rand.NewSource(seed))

			// Page-store rows: pinned out of memory, checkpointed so they
			// live in heap pages, then unpinned so later updates migrate
			// them back (mixed transactions).
			if err := e.PinTable("items", false); err != nil {
				t.Fatal(err)
			}
			tx := e.Begin()
			for i := int64(1000); i < 1080; i++ {
				if err := tx.Insert("items", itemRow(i, fmt.Sprintf("page-%d", i), i)); err != nil {
					t.Fatal(err)
				}
			}
			mustCommit(t, tx)
			if err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := e.UnpinTable("items"); err != nil {
				t.Fatal(err)
			}

			ids := make([]int64, 0, 256)
			for i := int64(1000); i < 1080; i++ {
				ids = append(ids, i)
			}
			nextID := int64(1)
			for round := 0; round < 120; round++ {
				tx := e.Begin()
				abort := rng.Intn(8) == 0
				var added, removed []int64
				for op := 0; op < 1+rng.Intn(4); op++ {
					switch k := rng.Intn(10); {
					case k < 5 || len(ids) == 0: // insert
						id := nextID
						nextID++
						if err := tx.Insert("items", itemRow(id, fmt.Sprintf("n%d", id%13), id)); err != nil {
							t.Fatal(err)
						}
						added = append(added, id)
					case k < 8: // update (migrates page rows into the IMRS)
						id := ids[rng.Intn(len(ids))]
						if _, err := tx.Update("items", pk(id), func(r row.Row) (row.Row, error) {
							r[2] = row.Int64(r[2].Int() + 1)
							return r, nil
						}); err != nil {
							t.Fatal(err)
						}
					default: // delete
						id := ids[rng.Intn(len(ids))]
						if _, err := tx.Delete("items", pk(id)); err != nil {
							t.Fatal(err)
						}
						removed = append(removed, id)
					}
				}
				if abort {
					tx.Abort()
					continue
				}
				mustCommit(t, tx)
				ids = append(ids, added...)
				for _, id := range removed {
					for i, v := range ids {
						if v == id {
							ids = append(ids[:i], ids[i+1:]...)
							break
						}
					}
				}
			}

			// A loser in flight at the crash: must not be recovered.
			loser := e.Begin()
			if err := loser.Insert("items", itemRow(999999, "loser", 0)); err != nil {
				t.Fatal(err)
			}
			e.Halt()

			// Recovery must not mutate durable state (logs are only
			// tail-repaired, dirty pages are never flushed without a
			// checkpoint), so the same storage recovers twice.
			fp := func(threads int) string {
				e2, err := Open(st.config(func(c *Config) {
					c.RecoveryThreads = threads
					c.PackInterval = time.Hour // keep the packer out of the comparison
				}))
				if err != nil {
					t.Fatalf("recovery with %d threads: %v", threads, err)
				}
				defer e2.Halt()
				if got := e2.Stats().Recovery.Threads; got != threads {
					t.Fatalf("recovery threads = %d, want %d", got, threads)
				}
				return recoveryFingerprint(t, e2)
			}
			serial := fp(1)
			parallel := fp(8)
			if serial != parallel {
				t.Errorf("parallel recovery diverged from serial.\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
			}
			if strings.Contains(serial, "999999") {
				t.Error("loser transaction was recovered")
			}
			_ = loser
		})
	}
}

// TestRecoveryQueueOrderColdestFirst: recovered pack queues must be in
// coldness (last-access) order, not RID-map iteration order, so the
// first post-restart pack cycle evicts actually-cold rows.
func TestRecoveryQueueOrderColdestFirst(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)

	// One transaction per insert: strictly increasing commit timestamps.
	for i := int64(1); i <= 30; i++ {
		tx := e.Begin()
		if err := tx.Insert("items", itemRow(i, "q", i)); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	// Re-touch the oldest ten: they become the hottest rows.
	for i := int64(1); i <= 10; i++ {
		tx := e.Begin()
		if _, err := tx.Update("items", pk(i), func(r row.Row) (row.Row, error) {
			r[2] = row.Int64(100 + i)
			return r, nil
		}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	e.Halt()

	e2, err := Open(st.config(func(c *Config) {
		c.RecoveryThreads = 4
		c.PackInterval = time.Hour
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Halt()

	rt, err := e2.table("items")
	if err != nil {
		t.Fatal(err)
	}
	q := e2.Queues().PartitionQueues(rt.parts[0].cat.ID)
	if q == nil {
		t.Fatal("no queues rebuilt")
	}
	var stamps []uint64
	q[imrs.OriginInserted].Walk(func(en *imrs.Entry) bool {
		stamps = append(stamps, en.LastAccess())
		return true
	})
	if len(stamps) != 30 {
		t.Fatalf("queued entries = %d, want 30", len(stamps))
	}
	for i := 1; i < len(stamps); i++ {
		if stamps[i] < stamps[i-1] {
			t.Fatalf("queue not in coldness order at %d: %v", i, stamps)
		}
	}
}

// TestRecoveryReclaimsDeadEntries: an entry whose newest committed
// image is a tombstone must be reclaimed by the rebuild, not silently
// dropped from the queues while staying resident (the IMRS leak).
func TestRecoveryReclaimsDeadEntries(t *testing.T) {
	e := openEngine(t, func(c *Config) { c.PackInterval = time.Hour })
	createItems(t, e)

	tx := e.Begin()
	if err := tx.Insert("items", itemRow(1, "live", 1)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	// Hand-build the dead entry (committed tombstone, still published in
	// the RID map). The replay path removes deleted entries outright, so
	// this state only arises from historical logs / races — the rebuild
	// must still not leak it.
	rt, err := e.table("items")
	if err != nil {
		t.Fatal(err)
	}
	part := rt.parts[0].cat.ID
	r0 := rid.NewVirtual(part, 7777)
	en, err := e.store.CreateEntry(r0, part, imrs.OriginInserted, []byte{1, 2, 3}, 900)
	if err != nil {
		t.Fatal(err)
	}
	e.store.Commit(en.Head(), e.clock.Tick())
	tomb := e.store.AddTombstone(en, 901)
	e.store.Commit(tomb, e.clock.Tick())
	e.rmap.Put(r0, en)

	if e.store.Rows() != 2 {
		t.Fatalf("setup rows = %d, want 2", e.store.Rows())
	}
	if err := e.rebuildDerivedState(); err != nil {
		t.Fatal(err)
	}

	if got := e.rmap.Get(r0); got != nil {
		t.Fatal("dead entry still published in the RID map")
	}
	if !en.Packed() {
		t.Fatal("dead entry not marked reclaimed")
	}
	if e.store.Rows() != 1 {
		t.Fatalf("store rows after rebuild = %d, want 1 (dead entry leaked)", e.store.Rows())
	}
	if got := e.recovery.entriesReclaimed.Load(); got != 1 {
		t.Fatalf("entriesReclaimed = %d, want 1", got)
	}
	// The live row survived the rebuild intact.
	tx2 := e.Begin()
	rw, ok, err := tx2.Get("items", pk(1))
	if err != nil || !ok || rw[1].Str() != "live" {
		t.Fatalf("live row after rebuild: %v %v %v", rw, ok, err)
	}
	mustCommit(t, tx2)
}

// TestCheckpointFailureSurfaced: background checkpoint failures must be
// counted, kept as a sticky error, and surfaced on the next explicit
// Checkpoint once they repeat — not discarded.
func TestCheckpointFailureSurfaced(t *testing.T) {
	gate := &gatedBackend{Backend: wal.NewMemBackend()}
	cfg := DefaultConfig()
	cfg.IMRSCacheBytes = 8 << 20
	cfg.BufferPoolPages = 256
	cfg.DataDevice = disk.NewMemDevice(0, 0)
	cfg.SysLogBackend = gate
	cfg.IMRSLogBackend = wal.NewMemBackend()
	cfg.CheckpointEvery = 2 * time.Millisecond
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	createItems(t, e) // DDL checkpoint while the gate is still open

	gate.fail.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for {
		e.ckptFailMu.Lock()
		n := e.ckptConsecFail
		e.ckptFailMu.Unlock()
		if n >= ckptFailThreshold {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background checkpoint failures never accumulated (consecutive = %d)", n)
		}
		time.Sleep(2 * time.Millisecond)
	}

	snap := e.Stats()
	if snap.CheckpointFailures < ckptFailThreshold {
		t.Fatalf("CheckpointFailures = %d, want >= %d", snap.CheckpointFailures, ckptFailThreshold)
	}
	if snap.Checkpoints < 1 {
		t.Fatalf("Checkpoints = %d, want >= 1 (the DDL checkpoint)", snap.Checkpoints)
	}
	if snap.LastCheckpointError == "" {
		t.Fatal("LastCheckpointError empty while checkpoints are failing")
	}

	err = e.Checkpoint()
	if err == nil {
		t.Fatal("explicit Checkpoint returned nil despite repeated background failures")
	}
	if !strings.Contains(err.Error(), "consecutive") || !errors.Is(err, errGateClosed) {
		t.Fatalf("sticky checkpoint error = %v, want consecutive-failures wrap of the injected error", err)
	}

	gate.fail.Store(false)
	// The first call may consume a sticky error re-armed between the
	// explicit failure above and opening the gate; it must succeed
	// within a couple of attempts once appends work again.
	ok := false
	for i := 0; i < 5; i++ {
		if err := e.Checkpoint(); err == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("Checkpoint still failing after the fault cleared")
	}
	if e.Stats().LastCheckpointError != "" {
		t.Fatalf("LastCheckpointError not cleared after recovery: %q", e.Stats().LastCheckpointError)
	}
}

// TestCrashDuringCompactionGenerationSwitch: a compaction whose pinning
// checkpoint fails must leave the durable state recoverable from the
// OLD generation, and a later successful compaction must recover from
// the new one.
func TestCrashDuringCompactionGenerationSwitch(t *testing.T) {
	st := newGenStorage()
	gate := &gatedBackend{Backend: st.sys}
	open := func(threads int) (*Engine, error) {
		cfg := st.config(func(c *Config) { c.RecoveryThreads = threads })
		cfg.SysLogBackend = gate
		return Open(cfg)
	}

	e1, err := open(0)
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e1)
	tx := e1.Begin()
	for i := int64(1); i <= 40; i++ {
		if err := tx.Insert("items", itemRow(i, fmt.Sprintf("g%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	// Compaction writes generation 1 and swaps to it in memory, but the
	// checkpoint that PINS the new generation cannot reach the syslog.
	gate.fail.Store(true)
	if err := e1.CompactIMRSLog(); err == nil {
		t.Fatal("compaction succeeded despite the pinning checkpoint failing")
	}
	e1.Halt()
	gate.fail.Store(false)

	// Durable state still references generation 0: recovery must replay
	// the original log and see every row.
	e2, err := open(4)
	if err != nil {
		t.Fatalf("recovery after failed compaction: %v", err)
	}
	if g := e2.IMRSLogGeneration(); g != 0 {
		t.Fatalf("recovered generation = %d, want 0 (checkpoint never pinned gen 1)", g)
	}
	tx2 := e2.Begin()
	for i := int64(1); i <= 40; i++ {
		if _, ok, err := tx2.Get("items", pk(i)); err != nil || !ok {
			t.Fatalf("row %d lost by failed compaction: %v %v", i, ok, err)
		}
	}
	mustCommit(t, tx2)

	// The retried compaction succeeds (fresh generation-1 backend) and
	// the next crash recovers through the generation switch.
	if err := e2.CompactIMRSLog(); err != nil {
		t.Fatal(err)
	}
	if g := e2.IMRSLogGeneration(); g != 1 {
		t.Fatalf("generation after retried compaction = %d, want 1", g)
	}
	e2.Halt()

	e3, err := open(4)
	if err != nil {
		t.Fatalf("recovery from compacted generation: %v", err)
	}
	defer e3.Halt()
	if g := e3.IMRSLogGeneration(); g != 1 {
		t.Fatalf("generation after switch recovery = %d, want 1", g)
	}
	tx3 := e3.Begin()
	for i := int64(1); i <= 40; i++ {
		if _, ok, err := tx3.Get("items", pk(i)); err != nil || !ok {
			t.Fatalf("row %d lost across generation switch: %v %v", i, ok, err)
		}
	}
	mustCommit(t, tx3)
}

// TestRecoveryStatsPhases: the per-phase observability contract — phase
// names in pipeline order, counters matching the workload.
func TestRecoveryStatsPhases(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().Recovery.Ran {
		t.Fatal("fresh database reported a recovery run")
	}
	createItems(t, e)
	tx := e.Begin()
	for i := int64(1); i <= 20; i++ {
		if err := tx.Insert("items", itemRow(i, "s", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	e.Halt()

	e2, err := Open(st.config(func(c *Config) { c.RecoveryThreads = 4 }))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Halt()
	rec := e2.Stats().Recovery
	if !rec.Ran || rec.Threads != 4 {
		t.Fatalf("Ran=%v Threads=%d, want true/4", rec.Ran, rec.Threads)
	}
	want := []string{PhaseTailRepair, PhaseAnalyze, PhaseSyslogsRedo, PhaseColdRebuild, PhaseIMRSReplay, PhaseIndexRebuild, PhaseQueueRebuild}
	if len(rec.Phases) != len(want) {
		t.Fatalf("phases = %+v, want %v", rec.Phases, want)
	}
	for i, ph := range rec.Phases {
		if ph.Name != want[i] {
			t.Fatalf("phase %d = %q, want %q", i, ph.Name, want[i])
		}
	}
	if rec.RowsIndexed != 20 || rec.EntriesEnqueued != 20 || rec.IMRSRecords != 20 {
		t.Fatalf("indexed=%d enqueued=%d imrsRecords=%d, want 20/20/20",
			rec.RowsIndexed, rec.EntriesEnqueued, rec.IMRSRecords)
	}
	if rec.Total <= 0 {
		t.Fatalf("Total = %v, want > 0", rec.Total)
	}
	if rec.SyslogRecords == 0 {
		t.Fatal("SyslogRecords = 0, want the DDL checkpoint records counted")
	}
}
