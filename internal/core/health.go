package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// HealthState is the engine's operating state. States are ordered by
// severity; the FSM only moves to a strictly more severe state except
// for the reversible Healthy ↔ Degraded pair (DESIGN.md §9).
//
//	Healthy   — full service.
//	Degraded  — full service, but new ISUDs are routed to the page store
//	            and pack runs aggressively, shrinking the blast radius of
//	            whatever is failing (checkpoint streak, device fault
//	            exhaustion, IMRS cache pressure, pack error streak).
//	ReadOnly  — a WAL is poisoned: no write can ever become durable
//	            again, so writes are rejected with ErrReadOnly while
//	            snapshot reads keep being served from the IMRS and page
//	            store. Sticky until restart.
//	Halted    — Halt/Close ran; terminal.
type HealthState int32

// Health states in severity order.
const (
	StateHealthy HealthState = iota
	StateDegraded
	StateReadOnly
	StateHalted
)

// String implements fmt.Stringer.
func (s HealthState) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateReadOnly:
		return "read-only"
	case StateHalted:
		return "halted"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// healthCause is the bitmask of conditions holding the engine in
// Degraded. The state clears back to Healthy only when every cause has
// cleared.
type healthCause uint8

const (
	causeCheckpoint    healthCause = 1 << iota // checkpoint failure streak
	causeCachePressure                         // IMRS past the reject watermark
	causeDeviceFaults                          // data-device retry exhaustion
	causePackErrors                            // pack relocation failure streak
)

// causeNames orders the bitmask for display.
var causeNames = []struct {
	bit  healthCause
	name string
}{
	{causeCheckpoint, "checkpoint-failures"},
	{causeCachePressure, "imrs-cache-pressure"},
	{causeDeviceFaults, "device-fault-exhaustion"},
	{causePackErrors, "pack-errors"},
}

func (c healthCause) names() []string {
	var out []string
	for _, cn := range causeNames {
		if c&cn.bit != 0 {
			out = append(out, cn.name)
		}
	}
	return out
}

// packFailThreshold is how many consecutive pack relocation failures
// arm the causePackErrors degradation.
const packFailThreshold = 3

// maxHealthTransitions bounds the transition history kept for Stats.
const maxHealthTransitions = 32

// HealthTransition is one recorded state change.
type HealthTransition struct {
	From, To HealthState
	At       time.Time
	Cause    string
}

// HealthSnapshot is the health view surfaced through Snapshot and the
// public btrim.Health API.
type HealthSnapshot struct {
	State HealthState
	// Since is when the current state was entered (engine open time for
	// an engine that never transitioned).
	Since time.Time
	// DegradedCauses lists the conditions currently holding the engine
	// in Degraded (empty in other states... and also in ReadOnly/Halted,
	// where degradation is moot).
	DegradedCauses []string
	// ReadOnlyCause is the root cause that forced ReadOnly ("" before).
	ReadOnlyCause string
	// ReadOnlyRecoverable reports whether the ReadOnly state is the
	// recoverable in-doubt park (clears in place once the 2PC outcome
	// is learned) rather than the sticky poisoned-WAL verdict.
	ReadOnlyRecoverable bool
	// Transitions is the recorded state-change history, oldest first
	// (capped at maxHealthTransitions, oldest dropped).
	Transitions []HealthTransition

	// Retry-layer counters: the data device, the WAL flush path, and the
	// background checkpoint.
	DeviceRetry     fault.Stats
	WALRetry        fault.Stats
	CheckpointRetry fault.Stats
}

// healthFSM tracks the engine state. The current state is kept in an
// atomic for the hot-path gates (writable, imrsAdmission); everything
// else is mutex-guarded.
type healthFSM struct {
	state atomic.Int32

	mu            sync.Mutex
	causes        healthCause
	roCause       error
	roRecoverable bool
	since         time.Time
	transitions   []HealthTransition

	// onDegraded applies/reverts the engine's Degraded side effects
	// (ILM per-op disable sweep + aggressive pack). Called with mu held,
	// so it must not call back into the FSM.
	onDegraded func(bool)

	// now is the clock (tests and the chaos harness pin it).
	now func() time.Time
}

func (h *healthFSM) init(onDegraded func(bool)) {
	h.onDegraded = onDegraded
	h.now = time.Now
	h.since = h.now()
}

// load returns the current state (lock-free).
func (h *healthFSM) load() HealthState { return HealthState(h.state.Load()) }

// transitionLocked records a state change. Callers hold h.mu.
func (h *healthFSM) transitionLocked(to HealthState, cause string) {
	from := h.load()
	if from == to {
		return
	}
	h.state.Store(int32(to))
	h.since = h.now()
	h.transitions = append(h.transitions, HealthTransition{From: from, To: to, At: h.since, Cause: cause})
	if len(h.transitions) > maxHealthTransitions {
		h.transitions = h.transitions[len(h.transitions)-maxHealthTransitions:]
	}
	if h.onDegraded != nil {
		// Side effects track Degraded membership across any transition
		// shape (Healthy→Degraded, Degraded→ReadOnly keeps them, ...).
		if to == StateDegraded && from != StateDegraded {
			h.onDegraded(true)
		} else if from == StateDegraded && to == StateHealthy {
			h.onDegraded(false)
		}
	}
}

// setCause raises (on=true) or clears one Degraded cause, transitioning
// Healthy↔Degraded as the cause set becomes non-empty/empty. Once the
// engine is ReadOnly or Halted the cause set is still tracked (it shows
// in stats) but cannot move the state.
func (h *healthFSM) setCause(c healthCause, on bool, detail string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	prev := h.causes
	if on {
		h.causes |= c
	} else {
		h.causes &^= c
	}
	if h.causes == prev || h.load() >= StateReadOnly {
		return
	}
	if h.causes != 0 {
		h.transitionLocked(StateDegraded, detail)
	} else {
		h.transitionLocked(StateHealthy, "all degraded causes cleared")
	}
}

// forceReadOnly moves to ReadOnly with the given root cause. The cause
// is sticky: ReadOnly cannot be left except by restart (the poisoned
// WAL cannot be un-poisoned in place), and Halted still remembers it.
// Called while parked in the recoverable variant, it upgrades the park
// to sticky — a poisoned WAL trumps a pending in-doubt resolution.
func (h *healthFSM) forceReadOnly(cause error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.load() >= StateReadOnly {
		if h.load() == StateReadOnly && h.roRecoverable {
			h.roCause = cause
			h.roRecoverable = false
		}
		return
	}
	h.roCause = cause
	h.roRecoverable = false
	h.transitionLocked(StateReadOnly, cause.Error())
}

// parkReadOnly moves to the recoverable variant of ReadOnly: writes are
// rejected exactly as in the sticky state, but exitReadOnly may clear
// it in place once the blocking condition (an unresolved in-doubt
// transaction) resolves. A shard already ReadOnly keeps its current
// cause — parking never downgrades sticky to recoverable.
func (h *healthFSM) parkReadOnly(cause error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.load() >= StateReadOnly {
		return
	}
	h.roCause = cause
	h.roRecoverable = true
	h.transitionLocked(StateReadOnly, cause.Error())
}

// exitReadOnly clears a recoverable ReadOnly park, returning to
// Degraded when degradation causes are still raised and Healthy
// otherwise. It refuses to clear the sticky variant.
func (h *healthFSM) exitReadOnly(why string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if st := h.load(); st != StateReadOnly {
		return fmt.Errorf("core: exit read-only: engine is %v", st)
	}
	if !h.roRecoverable {
		return fmt.Errorf("core: read-only is sticky: %w", h.roCause)
	}
	h.roCause = nil
	h.roRecoverable = false
	if h.causes != 0 {
		h.transitionLocked(StateDegraded, why)
	} else {
		h.transitionLocked(StateHealthy, why)
		if h.onDegraded != nil {
			// The ReadOnly→Healthy edge bypasses the Degraded membership
			// edges transitionLocked tracks; revert explicitly (the hook
			// is idempotent).
			h.onDegraded(false)
		}
	}
	return nil
}

// halt moves to the terminal state.
func (h *healthFSM) halt(why string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.load() == StateHalted {
		return
	}
	h.transitionLocked(StateHalted, why)
}

// readOnlyCause returns the sticky ReadOnly root cause, nil before.
func (h *healthFSM) readOnlyCause() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.roCause
}

// readOnlyError builds the typed rejection under the lock so the cause
// and the recoverable bit are a consistent pair.
func (h *healthFSM) readOnlyError() *ReadOnlyError {
	h.mu.Lock()
	defer h.mu.Unlock()
	return &ReadOnlyError{Cause: h.roCause, Recoverable: h.roRecoverable}
}

// writable is the write-path gate: nil in Healthy/Degraded, a typed
// rejection in ReadOnly/Halted.
func (h *healthFSM) writable() error {
	switch h.load() {
	case StateHalted:
		return ErrEngineClosed
	case StateReadOnly:
		return h.readOnlyError()
	default:
		return nil
	}
}

// snapshot copies the health view.
func (h *healthFSM) snapshot() HealthSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HealthSnapshot{
		State:          h.load(),
		Since:          h.since,
		DegradedCauses: h.causes.names(),
		Transitions:    append([]HealthTransition(nil), h.transitions...),
	}
	if h.roCause != nil {
		s.ReadOnlyCause = h.roCause.Error()
		s.ReadOnlyRecoverable = h.roRecoverable
	}
	return s
}

// --- Engine integration -------------------------------------------------

// HealthState returns just the current state, lock-free — the sharded
// node's per-transaction shard gate, where the full Health() snapshot
// (mutex + history copy) would be hot-path overhead.
func (e *Engine) HealthState() HealthState { return e.health.load() }

// Health returns the engine's health view.
func (e *Engine) Health() HealthSnapshot {
	s := e.health.snapshot()
	s.DeviceRetry = e.devRetrier.Stats()
	s.WALRetry = e.walRetrier.Stats()
	s.CheckpointRetry = e.ckptRetrier.Stats()
	return s
}

// imrsAdmission reports whether new rows may enter the IMRS. In
// Degraded (and worse) the answer is no: new ISUDs go to the page
// store, capping sysimrslogs growth — the log that can only be bounded
// by a working pack/compaction pipeline — while the engine is sick.
// This gate is authoritative; the ILM per-op disable sweep that
// accompanies it is advisory (the tuner may re-enable ops next window).
func (e *Engine) imrsAdmission() bool { return e.health.load() == StateHealthy }

// applyDegraded is the healthFSM's side-effect hook: route new ISUDs to
// the page store through the ILM per-op disable path and force
// aggressive pack, reverting both when the engine heals. Pinned
// partitions keep their pin semantics (Pin re-asserts on the next
// tuner window; the authoritative imrsAdmission gate covers the gap).
func (e *Engine) applyDegraded(on bool) {
	for _, ps := range e.ilmReg.All() {
		ps.SetAllEnabled(!on)
	}
	e.packer.SetForceAggressive(on)
}

// notePoison checks both WALs for poisoning and forces ReadOnly on the
// first one found. Callers hold ckptMu (shared or exclusive): e.imrslog
// swaps under its exclusive side during compaction.
func (e *Engine) notePoison() {
	if err := e.syslog.Poisoned(); err != nil {
		e.health.forceReadOnly(err)
		return
	}
	if err := e.imrslog.Poisoned(); err != nil {
		e.health.forceReadOnly(err)
	}
}
