package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/wal"
)

// createHotCold creates two tables and pins "hot" into the IMRS and
// "cold" out of it, so a transaction inserting into both is a mixed
// transaction: redo-only records + contingent IMRSCommit (Aux=1) in
// sysimrslogs, heap records + RecCommit in syslogs.
func createHotCold(t *testing.T, e *Engine) {
	t.Helper()
	for _, name := range []string{"hot", "cold"} {
		if _, err := e.CreateTable(name, testSchema(), []string{"id"}, catalog.PartitionSpec{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.PinTable("hot", true); err != nil {
		t.Fatal(err)
	}
	if err := e.PinTable("cold", false); err != nil {
		t.Fatal(err)
	}
}

// commitMixed runs workers*perWorker concurrent mixed transactions
// through the group-commit pipeline and returns the set of keys whose
// Commit was acknowledged.
func commitMixed(t *testing.T, e *Engine, workers, perWorker int) map[int64]bool {
	t.Helper()
	var mu sync.Mutex
	acked := make(map[int64]bool)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := int64(w*1000 + i + 1)
				tx := e.Begin()
				if err := tx.Insert("hot", itemRow(key, "h", key)); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Insert("cold", itemRow(key, "c", key)); err != nil {
					tx.Abort()
					continue
				}
				if err := tx.Commit(); err == nil {
					mu.Lock()
					acked[key] = true
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	return acked
}

// checkPairing asserts the contingent-commit rule on a recovered
// engine: for every attempted key, the hot (IMRS) row and the cold
// (page-store) row are either both present or both absent. It returns
// the set of recovered keys.
func checkPairing(t *testing.T, e *Engine, workers, perWorker int) map[int64]bool {
	t.Helper()
	present := make(map[int64]bool)
	tx := e.Begin()
	defer tx.Abort()
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			key := int64(w*1000 + i + 1)
			_, hotOK, err := tx.Get("hot", pk(key))
			if err != nil {
				t.Fatal(err)
			}
			_, coldOK, err := tx.Get("cold", pk(key))
			if err != nil {
				t.Fatal(err)
			}
			if hotOK != coldOK {
				t.Fatalf("key %d recovered torn across stores: hot=%v cold=%v", key, hotOK, coldOK)
			}
			if hotOK {
				present[key] = true
			}
		}
	}
	return present
}

func crashConfig(st *sharedStorage) Config {
	return st.config(func(c *Config) {
		c.PackInterval = time.Hour // keep pack out of the log
	})
}

// TestConcurrentGroupCommitTornSyslogTail crashes with a torn final
// frame in syslogs: recovery must stop at the tear, discard the
// affected transactions' page-store halves, and — via the contingent
// Aux=1 rule — discard their IMRS halves too, even though those are
// fully intact in sysimrslogs.
func TestConcurrentGroupCommitTornSyslogTail(t *testing.T) {
	const workers, perWorker = 8, 40
	st := newSharedStorage()
	e, err := Open(crashConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	createHotCold(t, e)
	acked := commitMixed(t, e, workers, perWorker)
	if len(acked) != workers*perWorker {
		t.Fatalf("only %d/%d commits acknowledged", len(acked), workers*perWorker)
	}
	if grouped := e.Stats().IMRSLog.GroupedCommits; grouped == 0 {
		t.Fatal("group-commit pipeline was not exercised")
	}
	e.Halt() // crash

	// The crash tore the tail off syslogs mid-frame; sysimrslogs keeps a
	// torn partial frame appended by an in-flight batch write.
	sys := st.sys.Clone()
	sysLen, _ := sys.Size()
	sys.Truncate(sysLen * 6 / 10)
	ims := st.ims.Clone()
	if _, err := ims.Append([]byte{0xAB, 0xCD, 0x01}); err != nil {
		t.Fatal(err)
	}

	st2 := &sharedStorage{dev: st.dev, sys: sys, ims: ims}
	e2, err := Open(crashConfig(st2))
	if err != nil {
		t.Fatalf("recovery over torn logs failed: %v", err)
	}
	defer e2.Close()

	recovered := checkPairing(t, e2, workers, perWorker)
	if len(recovered) == 0 {
		t.Fatal("truncated log recovered nothing; expected the pre-tear prefix")
	}
	if len(recovered) >= len(acked) {
		t.Fatalf("recovered %d pairs from a log missing 40%% of its tail (committed %d)",
			len(recovered), len(acked))
	}
}

// TestTornTailRepairPreservesLaterCommits is the double-crash scenario:
// the first crash leaves torn frames on both log tails; recovery must
// TRUNCATE them (not merely stop reading there), because the reopened
// engine appends new commits at the backend's end — without the
// truncation those records would sit past the garbage, and the second
// recovery would stop at the old tear and silently lose every one of
// them.
func TestTornTailRepairPreservesLaterCommits(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(crashConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	createHotCold(t, e)
	acked := commitMixed(t, e, 1, 20) // keys 1..20
	if len(acked) != 20 {
		t.Fatalf("setup: %d/20 commits acknowledged", len(acked))
	}
	e.Halt() // crash #1

	// Both logs keep a torn partial frame from batch writes in flight.
	sys := st.sys.Clone()
	if _, err := sys.Append([]byte{0xAB, 0xCD, 0x01}); err != nil {
		t.Fatal(err)
	}
	ims := st.ims.Clone()
	if _, err := ims.Append(make([]byte, 5)); err != nil {
		t.Fatal(err)
	}
	st2 := &sharedStorage{dev: st.dev, sys: sys, ims: ims}
	e2, err := Open(crashConfig(st2))
	if err != nil {
		t.Fatalf("recovery over torn tails failed: %v", err)
	}
	// New acknowledged commits on the recovered engine.
	for i := int64(101); i <= 120; i++ {
		tx := e2.Begin()
		if err := tx.Insert("hot", itemRow(i, "h", i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Insert("cold", itemRow(i, "c", i)); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	e2.Halt() // crash #2

	st3 := &sharedStorage{dev: st2.dev, sys: st2.sys.Clone(), ims: st2.ims.Clone()}
	e3, err := Open(crashConfig(st3))
	if err != nil {
		t.Fatalf("second recovery failed: %v", err)
	}
	defer e3.Close()
	tx := e3.Begin()
	defer tx.Abort()
	for _, keys := range [][2]int64{{1, 20}, {101, 120}} {
		for i := keys[0]; i <= keys[1]; i++ {
			for _, table := range []string{"hot", "cold"} {
				if _, ok, err := tx.Get(table, pk(i)); err != nil || !ok {
					t.Fatalf("acknowledged key %d lost from %q after second crash (ok=%v err=%v)", i, table, ok, err)
				}
			}
		}
	}
}

// TestGroupFlushFailurePoisonsCommitPath: when a group flush fails, its
// committers roll back in memory — but their already-appended frames
// (commit markers included) sit in the log buffer. The log must refuse
// every later append/flush so those frames can never become durable and
// recovery can never replay transactions the live engine reported as
// failed.
func TestGroupFlushFailurePoisonsCommitPath(t *testing.T) {
	st := newSharedStorage()
	faulty := &wal.FaultyBackend{Inner: st.sys, FailSyncsAfter: 8}
	cfg := crashConfig(st)
	cfg.SysLogBackend = faulty
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	createHotCold(t, e)
	failedAt := int64(-1)
	for i := int64(1); i <= 50; i++ {
		tx := e.Begin()
		if err := tx.Insert("cold", itemRow(i, "c", i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			failedAt = i
			break
		}
	}
	if failedAt < 0 {
		t.Fatal("sync fault never fired; fault injection ineffective")
	}
	// Poisoned: the engine went ReadOnly, so later writes are rejected
	// up front with the typed ErrReadOnly carrying the poisoning as its
	// root cause (they could never become durable anyway).
	tx := e.Begin()
	ierr := tx.Insert("cold", itemRow(1000, "c", 1000))
	if !errors.Is(ierr, ErrReadOnly) || !errors.Is(ierr, wal.ErrPoisoned) {
		t.Fatalf("insert after failed group flush: %v, want ErrReadOnly wrapping wal.ErrPoisoned", ierr)
	}
	tx.Abort()
	if st := e.Health().State; st != StateReadOnly {
		t.Fatalf("health state = %v, want read-only", st)
	}
	// And the failed transactions stayed rolled back in the live engine.
	tx2 := e.Begin()
	defer tx2.Abort()
	for _, key := range []int64{failedAt} {
		if _, ok, _ := tx2.Get("cold", pk(key)); ok {
			t.Fatalf("rolled-back row %d visible in the live engine", key)
		}
	}
	e.Halt()
}

// TestHaltDoesNotFlushQueuedCommitters: Halt simulates a crash, so a
// committer still queued in the group-commit pipeline must get an error
// and its records must never reach the backend — durable state stays
// exactly what a crash at that instant would leave.
func TestHaltDoesNotFlushQueuedCommitters(t *testing.T) {
	st := newSharedStorage()
	cfg := crashConfig(st)
	cfg.CommitCoalesceDelay = time.Hour // committers stay queued
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	createHotCold(t, e)
	imsBefore, _ := st.ims.Size()
	done := make(chan error, 1)
	go func() {
		tx := e.Begin()
		if err := tx.Insert("hot", itemRow(1, "h", 1)); err != nil {
			done <- err
			return
		}
		done <- tx.Commit()
	}()
	time.Sleep(50 * time.Millisecond) // let the committer enqueue
	e.Halt()
	if err := <-done; err == nil {
		t.Fatal("commit acknowledged during a simulated crash")
	}
	if imsAfter, _ := st.ims.Size(); imsAfter != imsBefore {
		t.Fatalf("Halt flushed %d bytes of queued commits; not crash-exact", imsAfter-imsBefore)
	}
	e2, err := Open(crashConfig(st))
	if err != nil {
		t.Fatalf("recovery after Halt failed: %v", err)
	}
	defer e2.Close()
	tx := e2.Begin()
	defer tx.Abort()
	if _, ok, _ := tx.Get("hot", pk(1)); ok {
		t.Fatal("unacknowledged row survived the simulated crash")
	}
}

// TestConcurrentGroupCommitBackendKilledMidBatch kills the sysimrslogs
// backend while committers are in flight: the batch in progress is torn
// on the medium, its waiters get errors and roll back, and recovery
// restores exactly the acknowledged transactions.
func TestConcurrentGroupCommitBackendKilledMidBatch(t *testing.T) {
	const workers, perWorker = 8, 40
	st := newSharedStorage()
	faulty := &wal.FaultyBackend{Inner: st.ims, FailAppendsAfter: 20, TornBytes: 11}
	cfg := crashConfig(st)
	cfg.IMRSLogBackend = faulty
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	createHotCold(t, e)
	acked := commitMixed(t, e, workers, perWorker)
	if len(acked) == 0 {
		t.Fatal("no commit survived before the backend died")
	}
	if len(acked) == workers*perWorker {
		t.Fatal("backend kill did not fail any commit; fault injection ineffective")
	}
	e.Halt() // crash

	st2 := &sharedStorage{dev: st.dev, sys: st.sys.Clone(), ims: st.ims.Clone()}
	e2, err := Open(crashConfig(st2))
	if err != nil {
		t.Fatalf("recovery after backend kill failed: %v", err)
	}
	defer e2.Close()

	recovered := checkPairing(t, e2, workers, perWorker)
	for key := range acked {
		if !recovered[key] {
			t.Fatalf("acknowledged key %d lost in recovery", key)
		}
	}
	for key := range recovered {
		if !acked[key] {
			t.Fatalf("unacknowledged key %d resurrected by recovery", key)
		}
	}
}
