package core

import (
	"strings"
	"testing"

	"repro/internal/row"
	"repro/internal/wal"
)

// TestRedoToleratesTornCheckpoint: Checkpoint flushes the buffer pool
// before its RecCheckpoint record turns durable, and it is allowed to
// fail in between (the health FSM just records the failure). A crash
// after such a torn checkpoint leaves the on-disk pages AHEAD of the
// durable checkpoint LSN, so the redo pass re-applies records whose
// effects are already in the page image. Strict physical redo then
// explodes on the non-idempotent ops — deleting an already-dead slot,
// updating a dead slot, inserting onto a live one — even though
// replaying the records in log order with per-slot last-writer-wins
// converges on exactly the pre-crash committed state. This is the
// "core: redo delete ...: slot is dead" failure the chaos soak caught
// (transient device/WAL budgets concentrating on the cycle-end
// checkpoint); redo must reconcile these conflicts, count them, and
// recover every committed row.
func TestRedoToleratesTornCheckpoint(t *testing.T) {
	st := newSharedStorage()
	faulty := &wal.FaultyBackend{Inner: st.sys}
	cfg := crashConfig(st)
	cfg.SysLogBackend = faulty
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)
	// Pin the table out of the IMRS: every row lives on heap pages and
	// every DML op logs a RecHeap* record in syslogs.
	if err := e.PinTable("items", false); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	for i := int64(1); i <= 8; i++ {
		if err := tx.Insert("items", itemRow(i, "r", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	// Clean base checkpoint: the page image and ckptLSN agree.
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Post-base traffic, each op a committed record past the base
	// checkpoint. Against the ahead-of-checkpoint image the replay will
	// hit, in order: an insert onto a live slot, an in-place update
	// (idempotent, no conflict), an update of a dead slot, and deletes
	// of dead slots — the exact shape the soak failure had.
	commit1 := func(fn func(tx *Txn) error) {
		t.Helper()
		tx := e.Begin()
		if err := fn(tx); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	commit1(func(tx *Txn) error { return tx.Insert("items", itemRow(9, "r", 9)) })
	setQty := func(q int64) func(row.Row) (row.Row, error) {
		return func(r row.Row) (row.Row, error) { r[2] = row.Int64(q); return r, nil }
	}
	commit1(func(tx *Txn) error { _, err := tx.Update("items", pk(3), setQty(333)); return err })
	commit1(func(tx *Txn) error { _, err := tx.Update("items", pk(4), setQty(444)); return err })
	commit1(func(tx *Txn) error { _, err := tx.Delete("items", pk(4)); return err })
	commit1(func(tx *Txn) error { _, err := tx.Delete("items", pk(1)); return err })
	commit1(func(tx *Txn) error { _, err := tx.Delete("items", pk(2)); return err })

	// Torn checkpoint: the body flushes the pool (pages now reflect all
	// of the above), then the RecCheckpoint flush dies on injected
	// transient append faults until both the WAL-level retrier and the
	// checkpoint-level retrier give up. Failed appends write nothing,
	// so the durable log keeps the OLD checkpoint record.
	faulty.AddTransientAppendFaults(100)
	if err := e.Checkpoint(); err == nil {
		t.Fatal("checkpoint succeeded through the injected append faults")
	}
	_ = e.Halt() // crash-exact stop

	// Reopen over the same device and the durable log contents.
	st2 := &sharedStorage{dev: st.dev, sys: st.sys.Clone(), ims: st.ims.Clone()}
	e2, err := Open(crashConfig(st2))
	if err != nil {
		if strings.Contains(err.Error(), "slot") {
			t.Fatalf("recovery died on a slot-state redo conflict: %v", err)
		}
		t.Fatalf("recovery failed: %v", err)
	}
	defer e2.Close()

	rc := e2.Stats().Recovery.RedoConflicts
	if rc != 4 {
		t.Errorf("RedoConflicts = %d, want 4 (insert-on-live, update-on-dead, 2× delete-on-dead)", rc)
	}
	tx2 := e2.Begin()
	defer tx2.Abort()
	want := map[int64]int64{3: 333, 5: 5, 6: 6, 7: 7, 8: 8, 9: 9}
	for id, qty := range want {
		r, ok, err := tx2.Get("items", pk(id))
		if err != nil || !ok {
			t.Fatalf("committed row %d lost after torn-checkpoint recovery (ok=%v err=%v)", id, ok, err)
		}
		if got := r[2].Int(); got != qty {
			t.Errorf("row %d qty = %d, want %d", id, got, qty)
		}
	}
	for _, id := range []int64{1, 2, 4} {
		if _, ok, err := tx2.Get("items", pk(id)); err != nil || ok {
			t.Fatalf("deleted row %d after recovery: ok=%v err=%v", id, ok, err)
		}
	}
}
