//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates per memory access, which invalidates
// testing.AllocsPerRun budgets.
const raceEnabled = false
