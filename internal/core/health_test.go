package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/storage/disk"
	"repro/internal/wal"
)

// healthConfig keeps background loops out of the way and makes retry
// backoff instantaneous.
func healthConfig(st *sharedStorage) Config {
	return st.config(func(c *Config) {
		c.PackInterval = time.Hour
		c.RetrySleep = func(time.Duration) {}
	})
}

// The acceptance-criteria regression test: a poisoned-WAL engine keeps
// answering point reads — from the IMRS and from the page store — while
// rejecting writes with the typed ErrReadOnly, and both Halt and Close
// report the root cause.
func TestReadOnlyEngineServesPointReads(t *testing.T) {
	st := newSharedStorage()
	faulty := &wal.FaultyBackend{Inner: st.sys}
	cfg := healthConfig(st)
	cfg.SysLogBackend = faulty
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)

	// Rows 1..5 into the page store (pinned out of the IMRS), rows
	// 11..15 into the IMRS, all committed while the WAL is healthy.
	if err := e.PinTable("items", false); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		tx := e.Begin()
		if err := tx.Insert("items", itemRow(i, "page", i)); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	if err := e.PinTable("items", true); err != nil {
		t.Fatal(err)
	}
	for i := int64(11); i <= 15; i++ {
		tx := e.Begin()
		if err := tx.Insert("items", itemRow(i, "imrs", i)); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}

	// Kill the syslog device; the next page-store commit's group flush
	// fails hard, poisons the WAL, and flips the engine read-only. (The
	// table is pinned back out so the write actually routes to the page
	// store and therefore to syslogs — IMRS writes log to sysimrslogs.)
	if err := e.PinTable("items", false); err != nil {
		t.Fatal(err)
	}
	faulty.Kill()
	var failedKey int64 = -1
	for i := int64(100); i < 160; i++ {
		tx := e.Begin()
		if err := tx.Insert("items", itemRow(i, "x", i)); err != nil {
			if errors.Is(err, ErrReadOnly) {
				tx.Abort()
				break
			}
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			failedKey = i
			break
		}
	}
	if failedKey < 0 {
		t.Fatal("injected device death never failed a commit")
	}
	if got := e.Health().State; got != StateReadOnly {
		t.Fatalf("health state = %v, want read-only", got)
	}
	if e.Health().ReadOnlyCause == "" {
		t.Fatal("read-only cause missing from health snapshot")
	}

	// Point reads still work: IMRS rows and page-store rows.
	tx := e.Begin()
	for _, key := range []int64{1, 3, 5, 11, 13, 15} {
		if _, ok, err := tx.Get("items", pk(key)); err != nil || !ok {
			t.Fatalf("point read of %d on read-only engine: ok=%v err=%v", key, ok, err)
		}
	}
	// The failed commit's row must never be served.
	if _, ok, _ := tx.Get("items", pk(failedKey)); ok {
		t.Fatalf("uncommitted row %d served by read-only engine", failedKey)
	}
	tx.Abort()

	// Writes are rejected with the typed error carrying the root cause.
	tx2 := e.Begin()
	werr := tx2.Insert("items", itemRow(999, "nope", 0))
	tx2.Abort()
	if !errors.Is(werr, ErrReadOnly) || !errors.Is(werr, wal.ErrPoisoned) {
		t.Fatalf("write on read-only engine: %v, want ErrReadOnly wrapping wal.ErrPoisoned", werr)
	}
	var roErr *ReadOnlyError
	if !errors.As(werr, &roErr) || roErr.Cause == nil {
		t.Fatalf("write rejection %v does not carry a typed root cause", werr)
	}

	// Close aggregates the read-only cause instead of pretending a clean
	// shutdown (and still closes everything best-effort).
	cerr := e.Close()
	if !errors.Is(cerr, ErrReadOnly) || !errors.Is(cerr, wal.ErrPoisoned) {
		t.Fatalf("Close on read-only engine: %v, want ErrReadOnly wrapping wal.ErrPoisoned", cerr)
	}
}

// Halt on a poisoned engine reports the sticky cause; a healthy halt
// stays silent.
func TestHaltReportsReadOnlyCause(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(healthConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Halt(); err != nil {
		t.Fatalf("healthy Halt: %v", err)
	}

	st2 := newSharedStorage()
	faulty := &wal.FaultyBackend{Inner: st2.sys}
	cfg := healthConfig(st2)
	cfg.SysLogBackend = faulty
	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e2)
	if err := e2.PinTable("items", false); err != nil { // route writes to syslogs
		t.Fatal(err)
	}
	faulty.Kill()
	for i := int64(1); i < 60; i++ {
		tx := e2.Begin()
		if err := tx.Insert("items", itemRow(i, "x", i)); err != nil {
			break
		}
		if err := tx.Commit(); err != nil {
			break
		}
	}
	if got := e2.Health().State; got != StateReadOnly {
		t.Fatalf("health state = %v, want read-only", got)
	}
	if herr := e2.Halt(); !errors.Is(herr, ErrReadOnly) {
		t.Fatalf("Halt on read-only engine: %v, want ErrReadOnly", herr)
	}
}

// A checkpoint-failure streak degrades the engine; the next successful
// checkpoint heals it. Transitions are recorded with causes.
func TestCheckpointStreakDegradesAndHeals(t *testing.T) {
	st := newSharedStorage()
	faulty := &wal.FaultyBackend{Inner: st.sys}
	cfg := healthConfig(st)
	cfg.SysLogBackend = faulty
	cfg.DisableRetry = true // surface each injected failure exactly once
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Halt()
	createItems(t, e)

	faulty.AddTransientAppendFaults(ckptFailThreshold)
	for i := 0; i < ckptFailThreshold; i++ {
		if err := e.checkpoint(); err == nil {
			t.Fatalf("checkpoint %d should have failed", i)
		}
	}
	h := e.Health()
	if h.State != StateDegraded {
		t.Fatalf("after %d checkpoint failures state = %v, want degraded", ckptFailThreshold, h.State)
	}
	if len(h.DegradedCauses) != 1 || h.DegradedCauses[0] != "checkpoint-failures" {
		t.Fatalf("degraded causes = %v", h.DegradedCauses)
	}

	if err := e.checkpoint(); err != nil {
		t.Fatalf("healed checkpoint: %v", err)
	}
	h = e.Health()
	if h.State != StateHealthy || len(h.DegradedCauses) != 0 {
		t.Fatalf("after successful checkpoint: state=%v causes=%v", h.State, h.DegradedCauses)
	}
	if len(h.Transitions) < 2 {
		t.Fatalf("transitions = %+v, want degrade + heal recorded", h.Transitions)
	}
	last := h.Transitions[len(h.Transitions)-1]
	if last.From != StateDegraded || last.To != StateHealthy || last.At.IsZero() {
		t.Fatalf("last transition = %+v", last)
	}
}

// Degraded routes new inserts to the page store even where the ILM
// per-op state would admit them, and reverts on heal.
func TestDegradedRoutesInsertsToPageStore(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(healthConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Halt()
	createItems(t, e)
	if err := e.PinTable("items", true); err != nil { // would always admit
		t.Fatal(err)
	}

	e.health.setCause(causeDeviceFaults, true, "test degradation")
	tx := e.Begin()
	if err := tx.Insert("items", itemRow(1, "degraded", 1)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if n := e.store.Rows(); n != 0 {
		t.Fatalf("degraded insert landed in the IMRS (%d rows), want page store", n)
	}
	tx = e.Begin()
	if _, ok, err := tx.Get("items", pk(1)); err != nil || !ok {
		t.Fatalf("degraded insert unreadable: ok=%v err=%v", ok, err)
	}
	tx.Abort()

	e.health.setCause(causeDeviceFaults, false, "")
	if got := e.Health().State; got != StateHealthy {
		t.Fatalf("state after heal = %v", got)
	}
	tx = e.Begin()
	if err := tx.Insert("items", itemRow(2, "healthy", 2)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if n := e.store.Rows(); n != 1 {
		t.Fatalf("healthy insert should land in the IMRS, rows=%d", n)
	}
}

// IMRS cache pressure past the reject watermark degrades the engine via
// the packer's overload backstop, and draining the cache heals it.
func TestCachePressureDegradesAndHeals(t *testing.T) {
	st := newSharedStorage()
	cfg := healthConfig(st)
	cfg.IMRSCacheBytes = 64 << 10
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Halt()
	createItems(t, e)
	if err := e.PinTable("items", true); err != nil { // pinned: pack can't drain it
		t.Fatal(err)
	}

	rejectWM := cfg.ILM.AggressiveWatermark() + 0.5*(1-cfg.ILM.AggressiveWatermark())
	var keys []int64
	for i := int64(1); ; i++ {
		used := float64(e.store.Allocator().Used())
		if used >= rejectWM*float64(e.store.Allocator().Capacity()) {
			break
		}
		tx := e.Begin()
		if err := tx.Insert("items", itemRow(i, "fill-the-cache-with-rows", i)); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		keys = append(keys, i)
	}

	e.packer.Step()
	h := e.Health()
	if h.State != StateDegraded {
		t.Fatalf("state after overload step = %v, want degraded", h.State)
	}
	if len(h.DegradedCauses) != 1 || h.DegradedCauses[0] != "imrs-cache-pressure" {
		t.Fatalf("degraded causes = %v", h.DegradedCauses)
	}

	for _, k := range keys {
		tx := e.Begin()
		if _, err := tx.Delete("items", pk(k)); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	e.gc.Drain()
	e.packer.Step()
	if got := e.Health().State; got != StateHealthy {
		t.Fatalf("state after drain = %v, want healthy (used=%d)", got, e.store.Allocator().Used())
	}
}

// Transient data-device glitches are absorbed by the retry layer during
// a checkpoint; exhaustion degrades the engine and a later retried
// success heals it.
func TestDeviceFaultRetryAndExhaustion(t *testing.T) {
	st := newSharedStorage()
	fd := &disk.FaultyDevice{Inner: st.dev}
	cfg := healthConfig(st)
	cfg.DataDevice = fd
	cfg.Retry = fault.Policy{MaxAttempts: 3}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Halt()
	createItems(t, e)
	if err := e.PinTable("items", false); err != nil { // dirty page-store pages
		t.Fatal(err)
	}
	dirty := func(base int64) {
		for i := base; i < base+3; i++ {
			tx := e.Begin()
			if err := tx.Insert("items", itemRow(i, "p", i)); err != nil {
				t.Fatal(err)
			}
			mustCommit(t, tx)
		}
	}

	// Two glitches: absorbed, checkpoint succeeds, engine stays healthy.
	dirty(1)
	fd.AddTransientWriteFaults(2)
	if err := e.checkpoint(); err != nil {
		t.Fatalf("checkpoint through transient device faults: %v", err)
	}
	h := e.Health()
	if h.State != StateHealthy {
		t.Fatalf("state = %v after absorbed faults", h.State)
	}
	if h.DeviceRetry.Retries == 0 || h.DeviceRetry.Recovered == 0 {
		t.Fatalf("device retry stats = %+v, want retries recorded", h.DeviceRetry)
	}

	// A 3-deep glitch exhausts MaxAttempts=3: checkpoint fails, device
	// cause degrades the engine.
	dirty(11)
	fd.AddTransientWriteFaults(3)
	if err := e.checkpoint(); err == nil {
		t.Fatal("checkpoint should have failed on retry exhaustion")
	}
	h = e.Health()
	if h.State != StateDegraded {
		t.Fatalf("state = %v after exhaustion, want degraded", h.State)
	}
	if h.DeviceRetry.Exhausted == 0 {
		t.Fatalf("device retry stats = %+v, want an exhaustion", h.DeviceRetry)
	}

	// One more glitch that the retry absorbs: the recovered operation
	// clears the device cause.
	dirty(21)
	fd.AddTransientWriteFaults(1)
	if err := e.checkpoint(); err != nil {
		t.Fatalf("healing checkpoint: %v", err)
	}
	if got := e.Health().State; got != StateHealthy {
		t.Fatalf("state = %v after recovered write, want healthy", got)
	}
}

// A pack relocation failure streak degrades the engine; the next
// successful relocation heals it. Driven through the packer hook
// directly (the pack pipeline is exercised end-to-end elsewhere).
func TestPackErrorStreakDegrades(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(healthConfig(st))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Halt()

	for i := int64(1); i <= packFailThreshold; i++ {
		e.packer.OnRelocStreak(i, errors.New("injected reloc failure"))
	}
	if got := e.Health(); got.State != StateDegraded || len(got.DegradedCauses) != 1 || got.DegradedCauses[0] != "pack-errors" {
		t.Fatalf("health after reloc streak = %+v", got)
	}
	e.packer.OnRelocStreak(0, nil)
	if got := e.Health().State; got != StateHealthy {
		t.Fatalf("health after reloc success = %v", got)
	}
}
