package core

import (
	"fmt"
	"sync"

	"repro/internal/imrs"
	"repro/internal/rid"
	"repro/internal/row"
	"repro/internal/txn"
	"repro/internal/wal"
)

// txnScratch is the recyclable allocation footprint of a transaction:
// the mutation buffers, the lock set, a reusable point-op key buffer
// and a bump arena for encoded row images. Pooling it makes the
// steady-state DML path allocate only what the operation semantically
// requires (the Txn header, decoded rows, index keys) instead of
// rebuilding this scaffolding per transaction.
type txnScratch struct {
	locks      map[rid.RID]struct{}
	sysRecs    []wal.Record
	imrsRecs   []wal.Record
	undo       []func()
	atCommit   []func(ts uint64)
	staged     []*imrs.Version
	newEntries []*imrs.Entry

	key row.Key // point-op key buffer (Get/Update/Delete)

	enc    []byte // bump arena for page-store row images
	encOff int
}

var scratchPool = sync.Pool{New: func() any {
	return &txnScratch{locks: make(map[rid.RID]struct{})}
}}

// Slices recycled through the pool are capacity-capped so one huge
// transaction doesn't pin its peak footprint forever (the same rule the
// wal encode buffers follow).
const (
	maxScratchItems = 1024
	maxScratchBytes = 64 << 10
)

func recycleRecords(s []wal.Record) []wal.Record {
	if cap(s) > maxScratchItems {
		return nil
	}
	clear(s) // drop Before/After references
	return s[:0]
}

// encBuf returns an empty slice with capacity n carved from the txn's
// encode arena; the arena block is reused across pooled transactions.
// Callers append exactly the encoded image and may hand the result to
// the WAL records and storage layers, all of which copy at use time
// (wal.Log.Append into its pending buffer, heap/btree into page
// frames), so recycling at finish() is safe. In legacy mode (or with no
// scratch) it falls back to a fresh heap slice.
func (t *Txn) encBuf(n int) []byte {
	sc := t.sc
	if sc == nil {
		return make([]byte, 0, n)
	}
	if cap(sc.enc)-sc.encOff < n {
		sz := 4 << 10
		if n > sz {
			sz = n
		}
		// The abandoned block stays alive through the records that
		// reference it until they are cleared; the arena keeps only the
		// fresh one.
		sc.enc = make([]byte, 0, sz)
		sc.encOff = 0
	}
	b := sc.enc[sc.encOff : sc.encOff : sc.encOff+n]
	sc.encOff += n
	return b
}

// pkKey encodes a primary-key lookup key into the txn's reusable key
// buffer. The result is only valid until the next pkKey call; every
// consumer (index search, hash probe, byte comparison) uses it
// transiently.
func (t *Txn) pkKey(pk []row.Value) row.Key {
	if t.sc == nil {
		return row.EncodeKey(nil, pk...)
	}
	k := row.EncodeKey(t.sc.key[:0], pk...)
	t.sc.key = k
	return k
}

// Txn is a transaction. It may touch page-store rows (undo/redo logged
// in syslogs, applied in place under row locks) and IMRS rows (staged as
// uncommitted versions, redo-only logged in sysimrslogs at commit).
//
// Commit ordering makes the pair of logs crash-atomic: the IMRS records
// and their IMRSCommit marker flush first (flagged as contingent when
// the transaction also wrote the page store), then the syslogs records
// and the Commit marker. Recovery treats a mixed transaction as
// committed only if the syslogs Commit exists.
type Txn struct {
	e       *Engine
	id      uint64
	snap    uint64
	snapRef txn.SnapshotRef
	done    bool

	locks map[rid.RID]struct{}

	sysRecs  []wal.Record
	imrsRecs []wal.Record

	undo     []func()          // applied in reverse on abort
	atCommit []func(ts uint64) // applied after the commit decision is durable

	staged     []*imrs.Version // versions to stamp with the commit TS
	newEntries []*imrs.Entry   // entries to hand to GC queue maintenance

	// Two-phase-commit state (twopc.go): set by Prepare, consumed by
	// CommitPrepared/AbortPrepared. Zero on ordinary transactions.
	prepared bool
	prepTS   uint64

	sc *txnScratch // recycled buffers backing the fields above; nil in legacy mode
}

// HasWrites reports whether the transaction has buffered any log
// records — i.e. whether committing it requires durability work. The
// sharded node uses it to keep single-shard transactions on the plain
// commit path (read-only participants commit for free).
func (t *Txn) HasWrites() bool { return len(t.sysRecs) > 0 || len(t.imrsRecs) > 0 }

// Begin starts a transaction with a snapshot of the current commit
// timestamp.
func (e *Engine) Begin() *Txn {
	e.ckptMu.RLock()
	t := &Txn{
		e:    e,
		id:   e.nextTxnID.Add(1),
		snap: e.clock.Now(),
	}
	if e.legacyAlloc {
		t.locks = make(map[rid.RID]struct{})
	} else {
		sc := scratchPool.Get().(*txnScratch)
		t.sc = sc
		t.locks = sc.locks
		t.sysRecs = sc.sysRecs
		t.imrsRecs = sc.imrsRecs
		t.undo = sc.undo
		t.atCommit = sc.atCommit
		t.staged = sc.staged
		t.newEntries = sc.newEntries
	}
	t.snapRef = e.snaps.Register(t.snap)
	return t
}

// ID returns the transaction id.
func (t *Txn) ID() uint64 { return t.id }

// Snapshot returns the transaction's snapshot timestamp.
func (t *Txn) Snapshot() uint64 { return t.snap }

// lock acquires (once) the txn-duration exclusive lock on r.
func (t *Txn) lock(r rid.RID) error {
	if _, held := t.locks[r]; held {
		return nil
	}
	if err := t.e.locks.Lock(t.id, r); err != nil {
		return err
	}
	t.locks[r] = struct{}{}
	return nil
}

// tryLock is the conditional variant (pack integration and caching).
func (t *Txn) tryLock(r rid.RID) bool {
	if _, held := t.locks[r]; held {
		return true
	}
	if !t.e.locks.TryLock(t.id, r) {
		return false
	}
	t.locks[r] = struct{}{}
	return true
}

func (t *Txn) releaseAll() {
	for r := range t.locks {
		t.e.locks.Unlock(t.id, r)
	}
	switch {
	case t.sc == nil:
		t.locks = nil
	case len(t.locks) > maxScratchItems:
		// Maps never shrink on clear; don't let one lock-heavy
		// transaction pin a huge table in the pool.
		t.sc.locks = make(map[rid.RID]struct{})
	default:
		clear(t.locks)
	}
}

func (t *Txn) finish() {
	t.done = true
	t.releaseAll()
	t.e.snaps.Unregister(t.snapRef)
	t.e.ckptMu.RUnlock()
	t.recycle()
}

// recycle harvests the transaction's buffers back into the scratch
// pool. Every element reference is cleared first (wal records hold row
// images, closures capture entries/versions), and slices that grew past
// the recycle cap are dropped rather than pinned. The Txn's own fields
// are nil'ed so a use-after-finish bug touches nil instead of a buffer
// owned by a later transaction.
func (t *Txn) recycle() {
	sc := t.sc
	if sc == nil {
		return
	}
	t.sc = nil
	sc.sysRecs = recycleRecords(t.sysRecs)
	sc.imrsRecs = recycleRecords(t.imrsRecs)
	if cap(t.undo) <= maxScratchItems {
		clear(t.undo)
		sc.undo = t.undo[:0]
	} else {
		sc.undo = nil
	}
	if cap(t.atCommit) <= maxScratchItems {
		clear(t.atCommit)
		sc.atCommit = t.atCommit[:0]
	} else {
		sc.atCommit = nil
	}
	if cap(t.staged) <= maxScratchItems {
		clear(t.staged)
		sc.staged = t.staged[:0]
	} else {
		sc.staged = nil
	}
	if cap(t.newEntries) <= maxScratchItems {
		clear(t.newEntries)
		sc.newEntries = t.newEntries[:0]
	} else {
		sc.newEntries = nil
	}
	t.sysRecs, t.imrsRecs, t.undo, t.atCommit = nil, nil, nil, nil
	t.staged, t.newEntries, t.locks = nil, nil, nil
	if cap(sc.enc) > maxScratchBytes {
		sc.enc = nil
	}
	sc.encOff = 0
	if cap(sc.key) > maxScratchBytes {
		sc.key = nil
	}
	scratchPool.Put(sc)
}

// Commit makes the transaction durable and visible.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("core: transaction already finished")
	}
	hasSys := len(t.sysRecs) > 0
	hasIMRS := len(t.imrsRecs) > 0
	if !hasSys && !hasIMRS {
		// Read-only.
		t.finish()
		return nil
	}
	ts := t.e.clock.Tick()

	// Commit pipeline: append every record first, then block on the
	// group-commit flushers via WaitDurable — concurrent committers
	// coalesce into shared backend writes and syncs. Ordering keeps the
	// pair of logs crash-atomic: the IMRS half (records + IMRSCommit
	// marker) must be durable before the syslogs RecCommit is even
	// appended, since a racing group flush could otherwise persist the
	// RecCommit first and a crash between the two would resurrect a
	// mixed transaction whose IMRS half was lost.
	var imrsLSN uint64
	if hasIMRS {
		aux := uint8(0)
		if hasSys {
			aux = 1 // contingent on the syslogs Commit record
		}
		for i := range t.imrsRecs {
			t.imrsRecs[i].TxnID = t.id
			if _, err := t.e.imrslog.Append(&t.imrsRecs[i]); err != nil {
				t.rollbackAfterLogError()
				return err
			}
		}
		cr := wal.Record{Type: wal.RecIMRSCommit, TxnID: t.id, CommitTS: ts, Aux: aux}
		lsn, err := t.e.imrslog.Append(&cr)
		if err != nil {
			t.rollbackAfterLogError()
			return err
		}
		imrsLSN = lsn
	}
	if hasSys {
		// The Heap* records are harmless without a RecCommit, so they can
		// ride any earlier group flush.
		for i := range t.sysRecs {
			t.sysRecs[i].TxnID = t.id
			if _, err := t.e.syslog.Append(&t.sysRecs[i]); err != nil {
				t.rollbackAfterLogError()
				return err
			}
		}
	}
	if hasIMRS {
		if err := t.e.imrslog.WaitDurable(imrsLSN); err != nil {
			t.rollbackAfterLogError()
			return err
		}
	}
	if hasSys {
		cr := wal.Record{Type: wal.RecCommit, TxnID: t.id, CommitTS: ts}
		lsn, err := t.e.syslog.Append(&cr)
		if err != nil {
			t.rollbackAfterLogError()
			return err
		}
		if err := t.e.syslog.WaitDurable(lsn); err != nil {
			t.rollbackAfterLogError()
			return err
		}
	}

	// The decision is durable: publish.
	for _, v := range t.staged {
		t.e.store.Commit(v, ts)
	}
	for _, fn := range t.atCommit {
		fn(ts)
	}
	for _, en := range t.newEntries {
		en.Touch(ts)
		t.e.gc.NewRow(en)
	}
	t.finish()
	return nil
}

// rollbackAfterLogError unwinds in-memory state when a log write failed
// mid-commit. The wal layer guarantees the unwound work cannot surface
// later: a failed Append buffers nothing, and a failed WaitDurable
// poisons the log (wal.ErrPoisoned) — no subsequent flush can make the
// already-appended frames, commit markers included, durable. If a log
// did get poisoned, the engine transitions to ReadOnly here: later
// writes are rejected up front with ErrReadOnly instead of each dying
// against the dead log, while reads keep being served.
func (t *Txn) rollbackAfterLogError() {
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.e.notePoison() // before finish: ckptMu is still held shared
	t.finish()
}

// Abort undoes the transaction.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.finish()
}
