package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/row"
)

// TestDropTable exercises the basic drop path: rows gone, name free for
// reuse, other tables untouched.
func TestDropTable(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)
	if _, err := e.CreateTable("keep", testSchema(), []string{"id"}, catalog.PartitionSpec{}, nil); err != nil {
		t.Fatal(err)
	}

	tx := e.Begin()
	for i := int64(1); i <= 50; i++ {
		if err := tx.Insert("items", itemRow(i, fmt.Sprintf("n%d", i), i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Insert("keep", itemRow(i, "keep", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	v0 := e.Catalog().Version()
	if err := e.DropTable("items"); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if e.Catalog().Version() <= v0 {
		t.Fatal("DDL version did not advance on drop")
	}
	if err := e.DropTable("items"); err == nil {
		t.Fatal("double drop should fail")
	}
	if e.Catalog().Table("items") != nil {
		t.Fatal("dropped table still in catalog")
	}

	tx2 := e.Begin()
	if _, _, err := tx2.Get("items", pk(1)); err == nil {
		t.Fatal("Get on dropped table should fail")
	}
	// Survivor table intact.
	for i := int64(1); i <= 50; i++ {
		rw, ok, err := tx2.Get("keep", pk(i))
		if err != nil || !ok || rw[2].Int() != i {
			t.Fatalf("keep row %d after drop: %v %v %v", i, rw, ok, err)
		}
	}
	mustCommit(t, tx2)

	// Name is free for reuse, and the new incarnation starts empty.
	createItems(t, e)
	tx3 := e.Begin()
	if _, ok, err := tx3.Get("items", pk(1)); err != nil || ok {
		t.Fatalf("recreated table not empty: ok=%v err=%v", ok, err)
	}
	if err := tx3.Insert("items", itemRow(1, "fresh", 1)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx3)
}

// TestDropTableCrashRecovery drops a table whose records are still in
// the logs, crashes, and recovers: replay must skip the dropped
// partitions (tombstoned in the checkpoint snapshot) instead of
// erroring, and a recreated same-name table must come back with only
// its own rows.
func TestDropTableCrashRecovery(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)
	if _, err := e.CreateTable("keep", testSchema(), []string{"id"}, catalog.PartitionSpec{}, nil); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	for i := int64(1); i <= 30; i++ {
		if err := tx.Insert("items", itemRow(i, "doomed", i)); err != nil {
			t.Fatal(err)
		}
		if err := tx.Insert("keep", itemRow(i, "keep", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	if err := e.DropTable("items"); err != nil {
		t.Fatal(err)
	}
	// Recreate under the same name and write new rows, so recovery must
	// tell the two incarnations apart by partition id.
	createItems(t, e)
	tx2 := e.Begin()
	for i := int64(100); i < 105; i++ {
		if err := tx2.Insert("items", itemRow(i, "fresh", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx2)

	e.Halt() // crash

	e2, err := Open(st.config(nil))
	if err != nil {
		t.Fatalf("recovery after drop: %v", err)
	}
	defer e2.Close()

	tx3 := e2.Begin()
	// Old incarnation's rows are gone.
	for i := int64(1); i <= 30; i++ {
		if _, ok, err := tx3.Get("items", pk(i)); err != nil || ok {
			t.Fatalf("dropped row %d resurfaced: ok=%v err=%v", i, ok, err)
		}
	}
	// New incarnation's rows survived.
	for i := int64(100); i < 105; i++ {
		rw, ok, err := tx3.Get("items", pk(i))
		if err != nil || !ok || rw[1].Str() != "fresh" {
			t.Fatalf("fresh row %d after recovery: %v %v %v", i, rw, ok, err)
		}
	}
	// Unrelated table untouched.
	for i := int64(1); i <= 30; i++ {
		rw, ok, err := tx3.Get("keep", pk(i))
		if err != nil || !ok || rw[1].Str() != "keep" {
			t.Fatalf("keep row %d after recovery: %v %v %v", i, rw, ok, err)
		}
	}
	mustCommit(t, tx3)
}

// TestDropTableClosedEngine checks the guard on a closed engine.
func TestDropTableClosedEngine(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.DropTable("items"); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("drop on closed engine: %v", err)
	}
}

// TestDropTableSecondaryIndexGone makes sure lookups through a dropped
// table's secondary index fail rather than touching freed state.
func TestDropTableSecondaryIndexGone(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)
	tx := e.Begin()
	if err := tx.Insert("items", itemRow(1, "x", 1)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if err := e.DropTable("items"); err != nil {
		t.Fatal(err)
	}
	tx2 := e.Begin()
	if _, err := tx2.LookupAll("items", "items_name", []row.Value{row.String("x")}); err == nil {
		t.Fatal("LookupAll on dropped table should fail")
	}
	tx2.Abort()
}
