package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Concurrent inserters racing an almost-full IMRS: every imrs.ErrCacheFull
// must be absorbed by the page-store fallback (no caller ever sees it),
// all rows must commit and stay readable, the allocator must never
// over-commit its capacity, and the per-partition footprint accounting
// must agree with the allocator exactly — including after deleting
// everything and draining the GC, when the footprint returns to the
// pre-storm baseline. Run under -race this also exercises the
// Alloc/Free gauge and the admission-check paths for data races.
func TestCacheFullFallbackConcurrent(t *testing.T) {
	st := newSharedStorage()
	cfg := healthConfig(st)
	cfg.IMRSCacheBytes = 8 << 10 // a few dozen rows at most
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Halt()
	createItems(t, e)
	// Pinned in memory: ILM always prefers the IMRS, so every spill below
	// is caused by cache pressure alone.
	if err := e.PinTable("items", true); err != nil {
		t.Fatal(err)
	}
	baseline := e.store.Allocator().Used()

	const workers, perWorker = 8, 60
	pad := strings.Repeat("x", 100)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := int64(w*1000 + i)
				tx := e.Begin()
				if err := tx.Insert("items", itemRow(key, pad, key)); err != nil {
					tx.Abort()
					errCh <- fmt.Errorf("insert %d: %w", key, err)
					return
				}
				if err := tx.Commit(); err != nil {
					errCh <- fmt.Errorf("commit %d: %w", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	snap := e.Stats()
	if snap.IMRSUsedBytes > snap.IMRSCapacity {
		t.Fatalf("allocator over-committed: used %d > capacity %d",
			snap.IMRSUsedBytes, snap.IMRSCapacity)
	}
	if snap.IMRSRows >= workers*perWorker {
		t.Fatalf("no spill happened (%d IMRS rows); cache too large for the test", snap.IMRSRows)
	}
	var partBytes, imrsInserts, pageNew int64
	for _, p := range snap.Partitions {
		partBytes += p.IMRSBytes
		imrsInserts += p.IMRSInserts
		pageNew += p.PageOps
	}
	if partBytes != snap.IMRSUsedBytes-baseline {
		t.Fatalf("partition footprint %d != allocator used %d",
			partBytes, snap.IMRSUsedBytes-baseline)
	}
	if imrsInserts == 0 || imrsInserts >= workers*perWorker {
		t.Fatalf("expected a mix of IMRS and spilled inserts, got %d IMRS of %d",
			imrsInserts, workers*perWorker)
	}

	// Every row is readable regardless of where it landed.
	tx := e.Begin()
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			key := int64(w*1000 + i)
			if _, ok, err := tx.Get("items", pk(key)); err != nil || !ok {
				t.Fatalf("row %d lost after fallback storm: ok=%v err=%v", key, ok, err)
			}
		}
	}
	tx.Abort()

	// Delete everything; after the GC drains, the allocator is back at
	// the pre-storm baseline — exact accounting, no leaked fragments.
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			tx := e.Begin()
			if ok, err := tx.Delete("items", pk(int64(w*1000+i))); err != nil || !ok {
				t.Fatalf("delete %d: ok=%v err=%v", w*1000+i, ok, err)
			}
			mustCommit(t, tx)
		}
	}
	e.gc.Drain()
	if used := e.store.Allocator().Used(); used != baseline {
		t.Fatalf("allocator used %d after delete+drain, want baseline %d", used, baseline)
	}
}
