package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/row"
)

// TestConcurrentMixedWorkloadInvariant hammers one table from many
// goroutines with inserts, read-modify-writes, and deletes, under a
// small IMRS (live pack pressure), and then checks a global invariant:
// the sum of all counters equals the number of committed increments.
func TestConcurrentMixedWorkloadInvariant(t *testing.T) {
	e := openEngine(t, func(c *Config) {
		c.IMRSCacheBytes = 1 << 20 // force continuous packing
	})
	createItems(t, e)

	// Seed rows.
	const rows = 200
	tx := e.Begin()
	for i := int64(1); i <= rows; i++ {
		if err := tx.Insert("items", itemRow(i, fmt.Sprintf("padding-padding-%d", i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	const workers = 8
	const opsPerWorker = 400
	var committedIncrements atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsPerWorker; i++ {
				id := int64(1 + rng.Intn(rows))
				tx := e.Begin()
				ok, err := tx.Update("items", pk(id), func(r row.Row) (row.Row, error) {
					r[2] = row.Int64(r[2].Int() + 1)
					return r, nil
				})
				if err != nil || !ok {
					tx.Abort()
					continue // lock timeout or similar: no increment
				}
				if err := tx.Commit(); err == nil {
					committedIncrements.Add(1)
				}
			}
		}(int64(w))
	}
	wg.Wait()

	var total int64
	tx2 := e.Begin()
	n := 0
	if err := tx2.ScanTable("items", func(r row.Row) bool {
		total += r[2].Int()
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)
	if n != rows {
		t.Fatalf("scan saw %d rows, want %d", n, rows)
	}
	if total != committedIncrements.Load() {
		t.Fatalf("counter sum %d != committed increments %d (lost or phantom updates)",
			total, committedIncrements.Load())
	}
	if e.Stats().RowsPacked == 0 {
		t.Log("note: no pack pressure materialized (timing)")
	}
}

// TestConcurrentInsertDeleteChurn interleaves inserts and deletes of the
// same key space across goroutines; afterwards every key must be in a
// definite state and indexes must agree with the table.
func TestConcurrentInsertDeleteChurn(t *testing.T) {
	e := openEngine(t, func(c *Config) {
		c.IMRSCacheBytes = 2 << 20
	})
	createItems(t, e)

	const keys = 50
	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				id := int64(1 + rng.Intn(keys))
				tx := e.Begin()
				if rng.Intn(2) == 0 {
					err := tx.Insert("items", itemRow(id, "churn", id))
					if err != nil && err != ErrDuplicateKey {
						if err == ErrRetry {
							tx.Abort()
							continue
						}
						t.Errorf("insert: %v", err)
						tx.Abort()
						return
					}
				} else {
					if _, err := tx.Delete("items", pk(id)); err != nil && err != ErrRetry {
						t.Errorf("delete: %v", err)
						tx.Abort()
						return
					}
				}
				_ = tx.Commit()
			}
		}(int64(w))
	}
	wg.Wait()

	// Consistency: Get and ScanTable agree on the live key set.
	live := map[int64]bool{}
	tx := e.Begin()
	if err := tx.ScanTable("items", func(r row.Row) bool {
		live[r[0].Int()] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= keys; id++ {
		_, ok, err := tx.Get("items", pk(id))
		if err != nil {
			t.Fatal(err)
		}
		if ok != live[id] {
			t.Fatalf("key %d: Get=%v but scan=%v", id, ok, live[id])
		}
	}
	mustCommit(t, tx)
}

// TestWriteConflictSerialization: two transactions updating the same row
// serialize on the row lock; both increments survive.
func TestWriteConflictSerialization(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)
	tx := e.Begin()
	_ = tx.Insert("items", itemRow(1, "a", 0))
	mustCommit(t, tx)

	t1 := e.Begin()
	if _, err := t1.Update("items", pk(1), func(r row.Row) (row.Row, error) {
		r[2] = row.Int64(r[2].Int() + 1)
		return r, nil
	}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		t2 := e.Begin()
		_, err := t2.Update("items", pk(1), func(r row.Row) (row.Row, error) {
			r[2] = row.Int64(r[2].Int() + 1)
			return r, nil
		})
		if err != nil {
			done <- err
			return
		}
		done <- t2.Commit()
	}()
	// t2 blocks on the row lock until t1 commits.
	mustCommit(t, t1)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	t3 := e.Begin()
	r, _, _ := t3.Get("items", pk(1))
	if r[2].Int() != 2 {
		t.Fatalf("qty = %d, want 2 (serialized increments)", r[2].Int())
	}
	mustCommit(t, t3)
}
