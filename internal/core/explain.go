package core

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"repro/internal/row"
)

// ExplainRow reports how a primary key currently resolves through every
// location layer — PK index, RID map, cold directory, page heap —
// without the visibility or retry policy Get applies. It is a
// diagnostic surface: when a read misbehaves (a lookup that keeps
// returning ErrRetry, a row that reads as missing), the report shows
// which layer disagrees with the others, which is otherwise invisible
// from outside the engine. The snapshot is best-effort (each layer is
// probed independently, races included) — use it to explain a stuck
// state, not to assert one.
func (e *Engine) ExplainRow(table string, pk []row.Value) string {
	rt, err := e.table(table)
	if err != nil {
		return err.Error()
	}
	key := row.EncodeKey(nil, pk...)
	pkIx := rt.indexes[0]

	var b strings.Builder
	r0, found, err := pkIx.tree.Search(key)
	fmt.Fprintf(&b, "index: rid=%v found=%v err=%v", r0, found, err)
	if err != nil || !found {
		return b.String()
	}

	keyMatch := func(data []byte) string {
		rw, err := e.decode(rt, data)
		if err != nil {
			return fmt.Sprintf("decodeErr=%v", err)
		}
		got, err := pkOf(rt, rw)
		if err != nil {
			return fmt.Sprintf("pkErr=%v", err)
		}
		return fmt.Sprintf("keyMatch=%v", bytes.Equal(got, key))
	}

	if en := e.rmap.Get(r0); en == nil {
		b.WriteString("; rmap: none")
	} else {
		v := en.Visible(math.MaxUint64, 0)
		fmt.Fprintf(&b, "; rmap: origin=%d packed=%v dirty=%v committedVisible=%v",
			en.Origin, en.Packed(), en.Dirty(), v != nil)
		if v != nil {
			fmt.Fprintf(&b, " %s", keyMatch(v.Data()))
		}
	}

	if seg, idx, k, ok := e.cold.Lookup(r0); ok {
		fmt.Fprintf(&b, "; cold: idx=%d killTS=%d", idx, k)
		if enc, err := seg.EncodeRowAt(idx, nil); err != nil {
			fmt.Fprintf(&b, " encodeErr=%v", err)
		} else {
			fmt.Fprintf(&b, " %s", keyMatch(enc))
		}
	} else {
		b.WriteString("; cold: none")
	}

	if !r0.IsVirtual() {
		if prt := e.partByID(r0.Partition()); prt != nil {
			if data, err := prt.heap.Fetch(r0); err != nil {
				fmt.Fprintf(&b, "; heap: err=%v", err)
			} else {
				fmt.Fprintf(&b, "; heap: %s", keyMatch(data))
			}
		}
	}
	return b.String()
}
