package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/txn"

	"repro/internal/row"
)

// TestSnapshotIsolationAcrossMigration: a reader whose snapshot predates
// a row's migration into the IMRS must still see the pre-migration image
// (served from the page store).
func TestSnapshotIsolationAcrossMigration(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)
	prt := e.table0(t, "items")

	prt.ilm.Pin(false)
	tx := e.Begin()
	_ = tx.Insert("items", itemRow(1, "original", 1))
	mustCommit(t, tx)
	prt.ilm.Pin(true)

	reader := e.Begin() // snapshot before migration

	writer := e.Begin()
	if _, err := writer.Update("items", pk(1), func(r row.Row) (row.Row, error) {
		r[1] = row.String("migrated")
		return r, nil
	}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, writer)
	if e.Store().Rows() != 1 {
		t.Fatal("setup: row did not migrate")
	}

	rw, ok, err := reader.Get("items", pk(1))
	if err != nil || !ok {
		t.Fatalf("old snapshot read: %v %v", ok, err)
	}
	if rw[1].Str() != "original" {
		t.Fatalf("old snapshot sees %q, want pre-migration image", rw[1].Str())
	}
	mustCommit(t, reader)
}

// TestCacheFullInsertFallsBackToPageStore: when the IMRS cannot take a
// new row, the insert transparently lands on the page store and remains
// fully readable.
func TestCacheFullInsertFallsBackToPageStore(t *testing.T) {
	e := openEngine(t, func(c *Config) {
		c.IMRSCacheBytes = 64 << 10 // tiny
		c.PackInterval = time.Hour
	})
	createItems(t, e)

	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = 'f'
	}
	tx := e.Begin()
	var n int64
	for n = 1; n <= 500; n++ {
		if err := tx.Insert("items", itemRow(n, string(payload), n)); err != nil {
			t.Fatalf("insert %d: %v", n, err)
		}
	}
	mustCommit(t, tx)

	if e.Store().Allocator().Used() > 64<<10 {
		t.Fatal("IMRS exceeded capacity")
	}
	// Everything readable, some in memory, some on pages.
	tx2 := e.Begin()
	for i := int64(1); i < n; i++ {
		rw, ok, err := tx2.Get("items", pk(i))
		if err != nil || !ok || rw[2].Int() != i {
			t.Fatalf("row %d: %v %v %v", i, rw, ok, err)
		}
	}
	mustCommit(t, tx2)
	snap := e.Stats()
	if snap.Partitions[0].PageOps == 0 {
		t.Fatal("no rows fell back to the page store")
	}
}

// TestLockTimeoutAbortsCleanly: a transaction that times out waiting on
// a lock gets ErrLockTimeout and the system stays consistent.
func TestLockTimeoutAbortsCleanly(t *testing.T) {
	e := openEngine(t, func(c *Config) { c.LockTimeout = 60 * time.Millisecond })
	createItems(t, e)
	tx := e.Begin()
	_ = tx.Insert("items", itemRow(1, "a", 1))
	mustCommit(t, tx)

	holder := e.Begin()
	if _, err := holder.Update("items", pk(1), func(r row.Row) (row.Row, error) {
		r[2] = row.Int64(10)
		return r, nil
	}); err != nil {
		t.Fatal(err)
	}

	waiter := e.Begin()
	_, err := waiter.Update("items", pk(1), func(r row.Row) (row.Row, error) {
		r[2] = row.Int64(20)
		return r, nil
	})
	if err != txn.ErrLockTimeout {
		t.Fatalf("err = %v, want lock timeout", err)
	}
	waiter.Abort()
	mustCommit(t, holder)

	tx2 := e.Begin()
	rw, _, _ := tx2.Get("items", pk(1))
	if rw[2].Int() != 10 {
		t.Fatalf("qty = %d, want holder's 10", rw[2].Int())
	}
	mustCommit(t, tx2)
}

// TestIndexScanPagination: scans spanning multiple internal batches
// (>256 hits) visit every row exactly once in order.
func TestIndexScanPagination(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)
	const n = 1000
	tx := e.Begin()
	for i := int64(1); i <= n; i++ {
		if err := tx.Insert("items", itemRow(i, fmt.Sprintf("n%06d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	tx2 := e.Begin()
	var prev int64 = -1
	count := 0
	err := tx2.IndexScan("items", "items_pk", nil, func(r row.Row) bool {
		id := r[0].Int()
		if id <= prev {
			t.Fatalf("scan out of order or duplicate: %d after %d", id, prev)
		}
		prev = id
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan visited %d rows, want %d", count, n)
	}
	mustCommit(t, tx2)
}

// TestUpdateMutateError: an error from the mutate callback leaves the
// row untouched and the transaction usable.
func TestUpdateMutateError(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)
	tx := e.Begin()
	_ = tx.Insert("items", itemRow(1, "a", 1))
	mustCommit(t, tx)

	tx2 := e.Begin()
	boom := fmt.Errorf("boom")
	if _, err := tx2.Update("items", pk(1), func(row.Row) (row.Row, error) {
		return nil, boom
	}); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	// Still usable; row unchanged.
	rw, _, _ := tx2.Get("items", pk(1))
	if rw[2].Int() != 1 {
		t.Fatal("failed mutate changed the row")
	}
	mustCommit(t, tx2)
}

// TestDeleteThenReadInSameTxn: a transaction that deletes a row no
// longer sees it through any access path.
func TestDeleteThenReadInSameTxn(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)
	tx := e.Begin()
	_ = tx.Insert("items", itemRow(1, "gone", 1))
	mustCommit(t, tx)

	tx2 := e.Begin()
	if ok, _ := tx2.Delete("items", pk(1)); !ok {
		t.Fatal("delete failed")
	}
	if _, ok, _ := tx2.Get("items", pk(1)); ok {
		t.Fatal("own delete still visible via Get")
	}
	mustCommit(t, tx2)
}

// TestReadYourOwnWrites within a transaction across update chains.
func TestReadYourOwnWrites(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)
	tx := e.Begin()
	_ = tx.Insert("items", itemRow(1, "v0", 0))
	for i := int64(1); i <= 5; i++ {
		if _, err := tx.Update("items", pk(1), func(r row.Row) (row.Row, error) {
			r[2] = row.Int64(i)
			return r, nil
		}); err != nil {
			t.Fatal(err)
		}
		rw, ok, err := tx.Get("items", pk(1))
		if err != nil || !ok || rw[2].Int() != i {
			t.Fatalf("own write %d not visible: %v %v %v", i, rw, ok, err)
		}
	}
	mustCommit(t, tx)
}

// TestCheckpointDuringWorkload: checkpoints interleaved with commits
// neither deadlock nor lose data.
func TestCheckpointDuringWorkload(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)
	for round := 0; round < 5; round++ {
		tx := e.Begin()
		for i := 0; i < 20; i++ {
			id := int64(round*20 + i + 1)
			if err := tx.Insert("items", itemRow(id, "ckpt", id)); err != nil {
				t.Fatal(err)
			}
		}
		mustCommit(t, tx)
		if err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	tx := e.Begin()
	count := 0
	_ = tx.ScanTable("items", func(row.Row) bool { count++; return true })
	mustCommit(t, tx)
	if count != 100 {
		t.Fatalf("rows after checkpoints = %d, want 100", count)
	}
}

// TestGCShortensVersionChains: repeated updates of a single row do not
// accumulate unbounded memory once snapshots move on.
func TestGCShortensVersionChains(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)
	tx := e.Begin()
	_ = tx.Insert("items", itemRow(1, "chain", 0))
	mustCommit(t, tx)

	for i := int64(1); i <= 500; i++ {
		tx := e.Begin()
		if _, err := tx.Update("items", pk(1), func(r row.Row) (row.Row, error) {
			r[2] = row.Int64(i)
			return r, nil
		}); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
	}
	// Wait for GC to reclaim superseded versions (generous deadline:
	// single-core CI environments schedule the GC goroutines late).
	deadline := time.Now().Add(10 * time.Second)
	var used int64
	for time.Now().Before(deadline) {
		used = e.Store().Allocator().Used()
		if used < 3*64 { // a couple of fragments at most
			break
		}
		sleepMs(5)
	}
	if used >= 10*64 {
		t.Fatalf("version chain memory not reclaimed: %d bytes", used)
	}
	if e.Stats().GCVersions == 0 {
		t.Fatal("GC freed no versions")
	}
}
