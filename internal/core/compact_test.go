package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/row"
	"repro/internal/wal"
)

// genStorage is sharedStorage plus an in-memory generation factory, so
// compaction can be tested across simulated crashes.
type genStorage struct {
	*sharedStorage
	mu   sync.Mutex
	gens map[uint64]*wal.MemBackend
}

func newGenStorage() *genStorage {
	return &genStorage{sharedStorage: newSharedStorage(), gens: map[uint64]*wal.MemBackend{}}
}

func (g *genStorage) config(mut func(*Config)) Config {
	cfg := g.sharedStorage.config(mut)
	cfg.IMRSLogFactory = func(gen uint64, fresh bool) (wal.Backend, error) {
		if gen == 0 {
			return g.ims, nil
		}
		g.mu.Lock()
		defer g.mu.Unlock()
		if b, ok := g.gens[gen]; ok && !fresh {
			return b, nil
		}
		b := wal.NewMemBackend()
		g.gens[gen] = b
		return b, nil
	}
	return cfg
}

func TestIMRSLogCompaction(t *testing.T) {
	st := newGenStorage()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)

	// Heavy churn: every row updated many times, half then deleted — the
	// raw log holds all of it; live content is a fraction.
	tx := e.Begin()
	for i := int64(1); i <= 100; i++ {
		if err := tx.Insert("items", itemRow(i, fmt.Sprintf("v0-%d", i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	for round := 0; round < 10; round++ {
		tx := e.Begin()
		for i := int64(1); i <= 100; i++ {
			if _, err := tx.Update("items", pk(i), func(r row.Row) (row.Row, error) {
				r[1] = row.String(fmt.Sprintf("v%d-%d", round+1, i))
				r[2] = row.Int64(int64(round + 1))
				return r, nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		mustCommit(t, tx)
	}
	tx = e.Begin()
	for i := int64(51); i <= 100; i++ {
		if _, err := tx.Delete("items", pk(i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	before := e.IMRSLogBytes()
	if err := e.CompactIMRSLog(); err != nil {
		t.Fatal(err)
	}
	after := e.IMRSLogBytes()
	if e.IMRSLogGeneration() != 1 {
		t.Fatalf("generation = %d, want 1", e.IMRSLogGeneration())
	}
	if after >= before/4 {
		t.Fatalf("compaction barely shrank the log: %d -> %d", before, after)
	}

	// Data unchanged after compaction.
	tx2 := e.Begin()
	for i := int64(1); i <= 50; i++ {
		rw, ok, err := tx2.Get("items", pk(i))
		if err != nil || !ok || rw[1].Str() != fmt.Sprintf("v10-%d", i) {
			t.Fatalf("row %d after compaction: %v %v %v", i, rw, ok, err)
		}
	}
	if _, ok, _ := tx2.Get("items", pk(75)); ok {
		t.Fatal("deleted row revived by compaction")
	}
	mustCommit(t, tx2)

	// New writes land in the compacted generation.
	tx3 := e.Begin()
	if err := tx3.Insert("items", itemRow(200, "post-compact", 200)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx3)

	// Crash + recover: the checkpoint pins generation 1.
	e.Halt()
	e2, err := Open(st.config(nil))
	if err != nil {
		t.Fatalf("recovery from compacted generation: %v", err)
	}
	defer e2.Close()
	if e2.IMRSLogGeneration() != 1 {
		t.Fatalf("recovered generation = %d, want 1", e2.IMRSLogGeneration())
	}
	tx4 := e2.Begin()
	for i := int64(1); i <= 50; i++ {
		rw, ok, err := tx4.Get("items", pk(i))
		if err != nil || !ok || rw[1].Str() != fmt.Sprintf("v10-%d", i) {
			t.Fatalf("row %d after crash: %v %v %v", i, rw, ok, err)
		}
	}
	rw, ok, err := tx4.Get("items", pk(200))
	if err != nil || !ok || rw[1].Str() != "post-compact" {
		t.Fatalf("post-compaction write lost: %v %v %v", rw, ok, err)
	}
	if _, ok, _ := tx4.Get("items", pk(75)); ok {
		t.Fatal("deleted row revived after crash")
	}
	mustCommit(t, tx4)
}

func TestCompactionRepeatable(t *testing.T) {
	st := newGenStorage()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	createItems(t, e)
	for gen := uint64(1); gen <= 3; gen++ {
		tx := e.Begin()
		if err := tx.Insert("items", itemRow(int64(gen), "x", int64(gen))); err != nil {
			t.Fatal(err)
		}
		mustCommit(t, tx)
		if err := e.CompactIMRSLog(); err != nil {
			t.Fatal(err)
		}
		if e.IMRSLogGeneration() != gen {
			t.Fatalf("generation = %d, want %d", e.IMRSLogGeneration(), gen)
		}
	}
	tx := e.Begin()
	n := 0
	_ = tx.ScanTable("items", func(row.Row) bool { n++; return true })
	mustCommit(t, tx)
	if n != 3 {
		t.Fatalf("rows after repeated compaction = %d, want 3", n)
	}
}

func TestCompactionWithoutFactoryFails(t *testing.T) {
	st := newSharedStorage() // no factory
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.CompactIMRSLog(); err != ErrNoLogFactory {
		t.Fatalf("err = %v, want ErrNoLogFactory", err)
	}
}

func TestFileBackedCompaction(t *testing.T) {
	dir := t.TempDir()
	mk := func() Config {
		cfg := DefaultConfig()
		cfg.Dir = dir
		cfg.IMRSCacheBytes = 8 << 20
		return cfg
	}
	e, err := Open(mk())
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)
	tx := e.Begin()
	for i := int64(1); i <= 30; i++ {
		if err := tx.Insert("items", itemRow(i, "file", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	if err := e.CompactIMRSLog(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(mk())
	if err != nil {
		t.Fatalf("reopen after file compaction: %v", err)
	}
	defer e2.Close()
	tx2 := e2.Begin()
	for i := int64(1); i <= 30; i++ {
		if _, ok, _ := tx2.Get("items", pk(i)); !ok {
			t.Fatalf("row %d lost across compacted restart", i)
		}
	}
	mustCommit(t, tx2)
}
