package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/imrs"
	"repro/internal/rid"
	"repro/internal/wal"
)

// ErrNoLogFactory reports that compaction is unavailable because the
// configuration supplied a single fixed sysimrslogs backend.
var ErrNoLogFactory = errors.New("core: sysimrslogs compaction needs Config.IMRSLogFactory")

// CompactIMRSLog rewrites sysimrslogs to contain exactly the live IMRS
// content, bounding the redo-only log's growth (it otherwise accumulates
// every IMRS operation ever made, since the IMRS is never checkpointed).
//
// The engine quiesces, writes a snapshot of every live IMRS row as one
// committed batch into a fresh log generation, switches to it, and
// checkpoints; the checkpoint record pins the new generation, so a crash
// at any point recovers from whichever generation the last durable
// checkpoint references. Old generation files are left behind for the
// operator to remove (they are never read again once a newer checkpoint
// exists).
func (e *Engine) CompactIMRSLog() error {
	if e.cfg.IMRSLogFactory == nil {
		return ErrNoLogFactory
	}
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()

	newGen := e.imrsGen + 1
	backend, err := e.cfg.IMRSLogFactory(newGen, true)
	if err != nil {
		return fmt.Errorf("core: compaction backend: %w", err)
	}
	newLog, err := wal.NewLog(backend)
	if err != nil {
		return err
	}
	newLog.SetRetrier(e.walRetrier)

	compTxn := e.nextTxnID.Add(1)
	rows := 0
	var werr error
	e.rmap.Range(func(r rid.RID, en *imrs.Entry) bool {
		v := en.Visible(math.MaxUint64, 0)
		if v == nil {
			return true // tombstoned, awaiting GC: not live content
		}
		data := v.Data()
		if data == nil {
			return true
		}
		prt := e.partByID(en.Part)
		if prt == nil {
			werr = fmt.Errorf("core: compaction found entry in unknown partition %v", r)
			return false
		}
		rec := wal.Record{
			Type: wal.RecIMRSInsert, TxnID: compTxn,
			Table: prt.cat.Table.ID, RID: r,
			Aux: uint8(en.Origin), After: data,
		}
		if _, err := newLog.Append(&rec); err != nil {
			werr = err
			return false
		}
		rows++
		return true
	})
	if werr != nil {
		return werr
	}
	cr := wal.Record{Type: wal.RecIMRSCommit, TxnID: compTxn, CommitTS: e.clock.Now()}
	if _, err := newLog.Append(&cr); err != nil {
		return err
	}
	if err := newLog.FlushAll(); err != nil {
		return err
	}

	old := e.imrslog
	e.imrslog = newLog
	e.imrsGen = newGen
	e.startGroupCommit(newLog) // commits are quiesced; safe to swap in
	// Durably pin the new generation. Until this checkpoint flushes, a
	// crash recovers from the old generation, which is still complete.
	if err := e.checkpointLocked(); err != nil {
		return err
	}
	_ = old.Close()
	return nil
}

// IMRSLogGeneration returns the current sysimrslogs generation.
func (e *Engine) IMRSLogGeneration() uint64 {
	e.ckptMu.RLock()
	defer e.ckptMu.RUnlock()
	return e.imrsGen
}

// IMRSLogBytes returns the byte size of the current sysimrslogs.
func (e *Engine) IMRSLogBytes() int64 {
	e.ckptMu.RLock()
	defer e.ckptMu.RUnlock()
	return e.imrslog.Size()
}
