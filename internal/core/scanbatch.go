package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/imrs"
	"repro/internal/rid"
	"repro/internal/row"
	"repro/internal/storage/colseg"
)

// scanScratch is the reusable working set of one ScanBatches call: the
// output batch, the full-segment column decodes, the selection vector,
// and the projection maps. Pooled so a steady scan workload allocates
// nothing per batch after warm-up.
type scanScratch struct {
	batch  colseg.Batch
	colvec []colseg.Vec      // per projected column, whole-segment decode
	keep   []int32           // selection vector into the current segment
	proj   []int             // projected schema ordinals, batch order
	kinds  []row.Kind        // projected column kinds, batch order
	colPos []int             // schema ordinal -> batch column, -1 = dropped
	rids   []rid.RID         // heap/IMRS RID staging
	segs   []*colseg.Segment // segments visited by this scan's segment pass
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// ScanBatches is the vectorized table scan: it visits the same rows as
// ScanTable under the same snapshot rules, but yields them in column
// batches of up to batchRows rows (0 = colseg.DefaultSegmentRows).
// cols selects and orders the projected columns (nil = all, schema
// order); projection is pushed into the segment decode — unprojected
// columns are never decompressed. Frozen rows decode straight from
// their segments into reused vectors (string values alias the immutable
// segment blob); heap and IMRS residents are appended row-wise. The
// batch passed to fn is only valid during the call. fn returns false to
// stop the scan.
func (t *Txn) ScanBatches(table string, cols []string, batchRows int, fn func(*colseg.Batch) bool) error {
	if t.done {
		return ErrTxnDone
	}
	rt, err := t.e.table(table)
	if err != nil {
		return err
	}
	if batchRows <= 0 {
		batchRows = colseg.DefaultSegmentRows
	}
	sch := rt.cat.Schema

	sc := scanScratchPool.Get().(*scanScratch)
	defer scanScratchPool.Put(sc)
	sc.proj = sc.proj[:0]
	sc.kinds = sc.kinds[:0]
	if cols == nil {
		for i := 0; i < sch.NumColumns(); i++ {
			sc.proj = append(sc.proj, i)
		}
	} else {
		for _, name := range cols {
			ci := sch.Ordinal(name)
			if ci < 0 {
				return fmt.Errorf("core: no column %q in table %q", name, table)
			}
			sc.proj = append(sc.proj, ci)
		}
	}
	sc.colPos = sc.colPos[:0]
	for i := 0; i < sch.NumColumns(); i++ {
		sc.colPos = append(sc.colPos, -1)
	}
	for j, ci := range sc.proj {
		sc.kinds = append(sc.kinds, sch.Column(ci).Kind)
		sc.colPos[ci] = j
	}
	sc.segs = sc.segs[:0]
	b := &sc.batch
	b.Reset(sc.kinds)

	stopped := false
	sinceYield := 0
	// flush yields the batch when it holds any rows; reports whether the
	// scan should continue. Every scanYieldRows flushed rows it also
	// yields the processor, so a CPU-bound scan cannot pin its P for the
	// async-preemption quantum and stall OLTP commit wakeups (see
	// scanYieldRows).
	flush := func() bool {
		if b.Len() == 0 {
			return true
		}
		sinceYield += b.Len()
		ok := fn(b)
		b.Reset(sc.kinds)
		if !ok {
			stopped = true
			return false
		}
		if sinceYield >= scanYieldRows {
			sinceYield = 0
			runtime.Gosched()
		}
		return true
	}

	for _, prt := range rt.parts {
		// Segment pass: build the selection vector under the scan
		// visibility rule, decode the projected columns once per
		// segment, then gather the selected rows batch by batch.
		for _, seg := range t.e.cold.Segments(prt.cat.ID) {
			if seg.TableID() != rt.cat.ID {
				continue
			}
			sc.segs = append(sc.segs, seg)
			sc.keep = sc.keep[:0]
			for i := 0; i < seg.Rows(); i++ {
				if t.segRowVisible(seg, i, seg.RIDAt(i)) {
					sc.keep = append(sc.keep, int32(i))
				}
			}
			if len(sc.keep) == 0 {
				continue
			}
			if cap(sc.colvec) < len(sc.proj) {
				sc.colvec = make([]colseg.Vec, len(sc.proj))
			}
			sc.colvec = sc.colvec[:len(sc.proj)]
			for j, ci := range sc.proj {
				sc.colvec[j].Reset(sc.kinds[j])
				if err := seg.AppendColumn(ci, &sc.colvec[j]); err != nil {
					return err
				}
			}
			prt.ilm.PageOps.Add(int64(len(sc.keep)))
			for off := 0; off < len(sc.keep); {
				room := batchRows - b.Len()
				if room == 0 {
					if !flush() {
						return nil
					}
					continue
				}
				span := sc.keep[off:min(off+room, len(sc.keep))]
				for _, i := range span {
					b.RIDs = append(b.RIDs, seg.RIDAt(int(i)))
				}
				for j := range sc.colvec {
					b.Cols[j].AppendSelect(&sc.colvec[j], span)
				}
				off += len(span)
			}
		}

		// Heap pass: same skip rules as ScanTable, rows appended
		// one at a time under their row locks.
		sc.rids = sc.rids[:0]
		if err := prt.heap.Scan(func(r rid.RID, _ []byte) bool {
			sc.rids = append(sc.rids, r)
			return true
		}); err != nil {
			return err
		}
		for _, r0 := range sc.rids {
			if t.e.rmap.Get(r0) != nil {
				continue
			}
			if _, _, k, ok := t.e.cold.Lookup(r0); ok && k == 0 {
				continue // live cold copy: the segment pass emitted it
			}
			data, found, err := t.lockedPageFetch(prt, r0)
			if err != nil {
				return err
			}
			if !found {
				continue
			}
			prt.ilm.PageOps.Inc()
			prt.ilm.PageReuseOps.Inc()
			if err := t.appendRowWise(sc, sch, r0, data); err != nil {
				return err
			}
			if b.Len() >= batchRows && !flush() {
				return nil
			}
		}
	}

	// IMRS pass.
	partSet := make(map[rid.PartitionID]bool, len(rt.parts))
	for _, p := range rt.parts {
		partSet[p.cat.ID] = true
	}
	sc.rids = sc.rids[:0]
	t.e.rmap.Range(func(r0 rid.RID, _ *imrs.Entry) bool {
		if partSet[r0.Partition()] {
			sc.rids = append(sc.rids, r0)
		}
		return true
	})
	for _, r0 := range sc.rids {
		data, ok, err := t.imrsBatchImage(rt, r0, sc.segs)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := t.appendRowWise(sc, sch, r0, data); err != nil {
			return err
		}
		if b.Len() >= batchRows && !flush() {
			return nil
		}
	}
	if !stopped {
		flush()
	}
	return nil
}

// appendRowWise decodes one encoded row image into the scratch batch,
// honoring the projection. Variable-length values are copied into the
// batch arena: data aliases mutable storage (page frame or IMRS
// fragment) that may change once the row lock is released.
func (t *Txn) appendRowWise(sc *scanScratch, sch *row.Schema, r0 rid.RID, data []byte) error {
	b := &sc.batch
	err := row.VisitEncoded(sch, data, func(col int, k row.Kind, i int64, f float64, p []byte) error {
		pos := sc.colPos[col]
		if pos < 0 {
			return nil
		}
		v := &b.Cols[pos]
		switch {
		case k == 0:
			v.AppendNull()
		case k == row.KindInt64:
			v.AppendInt64(i)
		case k == row.KindFloat64:
			v.AppendFloat64(f)
		default:
			v.AppendBytes(b.Arena(p))
		}
		return nil
	})
	if err != nil {
		return err
	}
	b.RIDs = append(b.RIDs, r0)
	return nil
}

// imrsBatchImage resolves one RID-map entry for the batch scan's IMRS
// pass — the same overlap rules as ScanTable's imrsScanResolve,
// returning the visible encoded image instead of a decoded row.
func (t *Txn) imrsBatchImage(rt *tableRT, r0 rid.RID, seen []*colseg.Segment) ([]byte, bool, error) {
	seg, idx, k, coldOK := t.e.cold.Lookup(r0)
	en := t.e.rmap.Get(r0)
	if en != nil {
		if v := en.Visible(t.snap, t.id); v != nil {
			prt := t.e.partByID(en.Part)
			en.Touch(t.e.clock.Now())
			prt.ilm.IMRSSelects.Inc()
			return v.Data(), true, nil
		}
		if (coldOK && (k == 0 || k > t.snap)) || r0.IsVirtual() {
			// The segment pass showed the cold copy, or nothing is
			// visible to this snapshot.
			return nil, false, nil
		}
		// Physical entry invisible to this snapshot: the page store
		// holds the pre-migration committed image.
	} else {
		if coldOK && k == 0 && !segSeen(seen, seg) {
			// Frozen mid-scan into a segment published after our segment
			// pass: emit the frozen image directly.
			enc, err := seg.EncodeRowAt(idx, nil)
			if err != nil {
				return nil, false, err
			}
			if prt := t.e.partByID(r0.Partition()); prt != nil {
				prt.ilm.PageOps.Inc()
			}
			return enc, true, nil
		}
		if (coldOK && k == 0) || r0.IsVirtual() {
			// The segment pass emitted the live cold copy, or the row is
			// deleted/moved (read-committed).
			return nil, false, nil
		}
	}
	prt := t.e.partByID(r0.Partition())
	if prt == nil {
		return nil, false, fmt.Errorf("core: unknown partition in %v", r0)
	}
	data, found, err := t.lockedPageFetch(prt, r0)
	if err != nil || !found {
		return nil, false, err
	}
	prt.ilm.PageOps.Inc()
	prt.ilm.PageReuseOps.Inc()
	return data, true, nil
}
