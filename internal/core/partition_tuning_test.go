package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/row"
)

// TestPerPartitionTuning reproduces the paper's Section V motivating
// example: a range-partitioned orders table where only the partition
// holding recent orders is hot. The tuner must disable IMRS use for the
// cold historical partitions while the hot partition stays enabled —
// the per-partition granularity that distinguishes the paper's design
// from table-level schemes.
func TestPerPartitionTuning(t *testing.T) {
	e := openEngine(t, func(c *Config) {
		c.IMRSCacheBytes = 2 << 20
		c.PackInterval = time.Hour // drive tuning manually via Step
		c.ILM.TuningWindowTxns = 50
		c.ILM.HysteresisWindows = 2
		c.ILM.MinNewRowsForDisable = 50
		c.ILM.DisableAvgReuse = 0.5
	})
	// orders partitioned by id range: p0 = historical, p1 = recent.
	_, err := e.CreateTable("orders", testSchema(), []string{"id"},
		catalog.PartitionSpec{Kind: catalog.PartitionRange, Column: "id", Bounds: []int64{100000}}, nil)
	if err != nil {
		t.Fatal(err)
	}

	pad := make([]byte, 400)
	for i := range pad {
		pad[i] = 'p'
	}
	var histID int64
	// Rounds: bulk-insert historical rows (never re-read) and hammer a
	// small set of recent rows with updates. Volume matters: the tuner
	// only disables once overall cache utilization passes its guard.
	for round := 0; round < 50; round++ {
		tx := e.Begin()
		for i := 0; i < 60; i++ {
			histID++
			if err := tx.Insert("orders", itemRow(histID, string(pad), histID)); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		mustCommit(t, tx)
		for j := 0; j < 10; j++ {
			tx := e.Begin()
			recent := int64(100001 + j)
			if round == 0 {
				_ = tx.Insert("orders", itemRow(recent, "recent", 0))
			}
			if _, err := tx.Update("orders", pk(recent), func(r row.Row) (row.Row, error) {
				r[2] = row.Int64(r[2].Int() + 1)
				return r, nil
			}); err != nil && round > 0 {
				t.Fatalf("recent update: %v", err)
			}
			mustCommit(t, tx)
		}
		sleepMs(2)
		e.Packer().Step() // runs tuning windows as the clock advances
	}

	snap := e.Stats()
	var histEnabled, recentEnabled *bool
	for i := range snap.Partitions {
		p := snap.Partitions[i]
		switch p.Name {
		case "orders/p0":
			v := p.InsertEnabled
			histEnabled = &v
		case "orders/p1":
			v := p.InsertEnabled
			recentEnabled = &v
		}
	}
	if histEnabled == nil || recentEnabled == nil {
		t.Fatalf("partitions missing from stats: %+v", snap.Partitions)
	}
	if *histEnabled {
		t.Error("cold historical partition still IMRS-enabled")
	}
	if !*recentEnabled {
		t.Error("hot recent partition was disabled")
	}

	// Re-enable on reuse jump: the workload shifts to historical data.
	histState := e.ILMState(e.Catalog().Table("orders").Partitions[0].ID)
	_ = histState
	for round := 0; round < 10; round++ {
		tx := e.Begin()
		for j := int64(1); j <= 40; j++ {
			if _, _, err := tx.Get("orders", pk(j)); err != nil {
				t.Fatal(err)
			}
			if _, err := tx.Update("orders", pk(j), func(r row.Row) (row.Row, error) {
				r[2] = row.Int64(r[2].Int() + 1)
				return r, nil
			}); err != nil {
				t.Fatal(err)
			}
		}
		mustCommit(t, tx)
		// Advance the clock so tuning windows elapse.
		for i := 0; i < 30; i++ {
			e.Clock().Tick()
		}
		e.Packer().Step()
	}
	snap = e.Stats()
	for _, p := range snap.Partitions {
		if p.Name == "orders/p0" && !p.InsertEnabled {
			t.Error("historical partition not re-enabled after the workload shifted to it")
		}
	}
	_ = fmt.Sprintf
}
