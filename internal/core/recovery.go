package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/imrs"
	"repro/internal/index/btree"
	"repro/internal/metrics"
	"repro/internal/rid"
	"repro/internal/storage/colseg"
	"repro/internal/storage/page"
	"repro/internal/wal"
)

// Recovery phase names, in execution order. PhaseInDoubt is conditional:
// it runs (between analyze and redo) only when analysis found prepared
// transactions with no local outcome, so single-engine deployments see
// exactly the usual phase list.
const (
	PhaseTailRepair   = "tail-repair"
	PhaseAnalyze      = "analyze"
	PhaseInDoubt      = "indoubt-resolve"
	PhaseSyslogsRedo  = "syslogs-redo"
	PhaseColdRebuild  = "cold-rebuild"
	PhaseIMRSReplay   = "imrs-replay"
	PhaseIndexRebuild = "index-rebuild"
	PhaseQueueRebuild = "queue-rebuild"
)

// recoveryInfo is the observable record of the last recovery run. It is
// fully written before Open returns (the parallel phases use the atomic
// fields), and read-only afterwards; Stats copies it into the Snapshot.
type recoveryInfo struct {
	ran     bool // false on a fresh database (nothing to recover)
	threads int  // configured worker-pool bound
	total   time.Duration
	phases  metrics.PhaseSet

	syslogRecords    int64 // records scanned by analyze
	imrsRecords      int64 // committed IMRS ops applied by replay
	redoConflicts    int64 // slot conflicts reconciled (durable losers)
	rowsIndexed      atomic.Int64
	entriesEnqueued  int64
	entriesReclaimed atomic.Int64

	// In-doubt 2PC resolution (the conditional PhaseInDoubt).
	inDoubt           int64 // prepared txns with no local outcome
	inDoubtCommitted  int64 // resolved commit via the coordinator
	inDoubtAborted    int64 // resolved abort (explicit or presumed)
	inDoubtUnresolved int64 // coordinator unreachable → shard parked ReadOnly
}

// phase runs fn as the named recovery phase, recording its wall time,
// item count, and worker count.
func (ri *recoveryInfo) phase(name string, fn func() (items int64, workers int, err error)) error {
	t0 := time.Now()
	items, workers, err := fn()
	ri.phases.Observe(name, time.Since(t0), items, workers)
	return err
}

// recoveryWorkers bounds the worker count for a parallel phase with
// jobs independent jobs.
func (e *Engine) recoveryWorkers(jobs int) int {
	n := e.cfg.RecoveryThreads
	if n > jobs {
		n = jobs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// runParallel executes jobs [0, n) on up to threads workers and returns
// the first error. Jobs are handed out through an atomic cursor so
// uneven job sizes balance across workers; with one worker (or one job)
// it degenerates to a plain loop, which is also the serial baseline the
// equivalence tests compare against.
func runParallel(threads, n int, fn func(job int) error) error {
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var cursor atomic.Int64
	errs := make([]error, threads)
	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				j := int(cursor.Add(1)) - 1
				if j >= n {
					return
				}
				if err := fn(j); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// recover brings the engine to a consistent state at Open: it loads the
// last checkpoint's catalog from syslogs, redoes committed page-store
// work after the checkpoint, replays sysimrslogs fully into the IMRS
// (redo-only; the IMRS is never checkpointed), and rebuilds every index
// and pack queue from the recovered base data. The two logs recover in
// this lock-step order so a transaction spanning both stores is applied
// all-or-nothing (paper Section II).
//
// The pipeline runs as explicit phases (tail repair → analyze →
// syslogs redo → sysimrslogs replay → index rebuild → queue rebuild),
// each timed and counted in e.recovery. The two heavy phases — replay
// and index rebuild — fan out over a pool of Config.RecoveryThreads
// workers; the others are inherently sequential scans.
func (e *Engine) recover() error {
	ri := &e.recovery
	ri.threads = e.cfg.RecoveryThreads
	start := time.Now()
	defer func() { ri.total = time.Since(start) }()

	if err := ri.phase(PhaseTailRepair, func() (int64, int, error) {
		n, err := e.repairLogTails()
		return n, 1, err
	}); err != nil {
		return err
	}

	var an sysAnalysis
	if err := ri.phase(PhaseAnalyze, func() (int64, int, error) {
		var err error
		an, err = e.analyzeSyslogs()
		return ri.syslogRecords, 1, err
	}); err != nil {
		return err
	}
	if len(an.prepared) > 0 {
		// In-doubt 2PC transactions must resolve before redo decides who
		// wins — resolution edits the winner set. The phase is conditional
		// so deployments without cross-shard traffic keep the usual list.
		if err := ri.phase(PhaseInDoubt, func() (int64, int, error) {
			n, err := e.resolveInDoubt(&an)
			return n, 1, err
		}); err != nil {
			return err
		}
	}
	ckptLSN, ckptBlob, ckptGen := an.ckptLSN, an.ckptBlob, an.ckptGen
	sysWinners, segOps, maxTS := an.winners, an.segOps, an.maxTS
	if ckptBlob == nil {
		// Fresh database.
		e.cat = catalog.New()
		return nil
	}
	ri.ran = true
	if ckptGen != e.imrsGen {
		// The last checkpoint pinned a compacted sysimrslogs generation:
		// replay from that generation, not the original backend.
		if e.cfg.IMRSLogFactory == nil {
			return fmt.Errorf("core: checkpoint references sysimrslogs generation %d but no IMRSLogFactory is configured", ckptGen)
		}
		backend, err := e.cfg.IMRSLogFactory(ckptGen, false)
		if err != nil {
			return err
		}
		log, err := wal.NewLog(backend)
		if err != nil {
			return err
		}
		log.SetRetrier(e.walRetrier)
		if _, err := log.RepairTail(); err != nil {
			return fmt.Errorf("core: sysimrslogs generation %d: %w", ckptGen, err)
		}
		_ = e.imrslog.Close()
		e.imrslog = log
		e.imrsGen = ckptGen
	}
	cat, err := catalog.DecodeSnapshot(ckptBlob)
	if err != nil {
		return err
	}
	e.cat = cat
	for _, t := range cat.Tables() {
		if _, err := e.mountRecoveredTable(t); err != nil {
			return err
		}
	}

	if err := ri.phase(PhaseSyslogsRedo, func() (int64, int, error) {
		n, err := e.redoSyslogs(ckptLSN, sysWinners)
		return n, 1, err
	}); err != nil {
		return err
	}

	// Cold segments rebuild from the full-log analyze scan (segment blobs
	// live only in syslogs; checkpoints never write them out) and must be
	// in place before the IMRS replay: compacted sysimrslogs drop frozen
	// rows' inserts, so their virtual-sequence bumps come from here.
	if err := ri.phase(PhaseColdRebuild, func() (int64, int, error) {
		n, err := e.rebuildColdStore(segOps, sysWinners)
		return n, 1, err
	}); err != nil {
		return err
	}

	var imrsMax uint64
	if err := ri.phase(PhaseIMRSReplay, func() (int64, int, error) {
		var workers int
		var err error
		imrsMax, workers, err = e.replayIMRSLog(sysWinners)
		return ri.imrsRecords, workers, err
	}); err != nil {
		return err
	}
	if imrsMax > maxTS {
		maxTS = imrsMax
	}
	e.clock.AdvanceTo(maxTS)

	return e.rebuildDerivedState()
}

// repairLogTails truncates any torn final frame off both logs before
// recovery scans them and — critically — before the engine resumes
// appending. NewLog bases LSNs on the raw backend size, so without the
// truncation new records would land past the torn garbage, and every
// later scan would stop at the old tear and silently discard
// acknowledged commits and checkpoints appended after it. RepairTail
// fails (and so does recovery) when valid frames follow the tear:
// that is mid-log corruption, not a crash artifact. Returns the total
// bytes discarded.
func (e *Engine) repairLogTails() (int64, error) {
	nSys, err := e.syslog.RepairTail()
	if err != nil {
		return 0, fmt.Errorf("core: syslogs: %w", err)
	}
	nIMRS, err := e.imrslog.RepairTail()
	if err != nil {
		return nSys, fmt.Errorf("core: sysimrslogs: %w", err)
	}
	return nSys + nIMRS, nil
}

// mountRecoveredTable mounts a table with restored heaps and fresh
// (empty) index trees; the index-rebuild phase repopulates them.
func (e *Engine) mountRecoveredTable(t *catalog.Table) (*tableRT, error) {
	rt, err := e.mountTable(t, false)
	if err != nil {
		return nil, err
	}
	for _, ix := range rt.indexes {
		tree, err := btree.New(e.pool)
		if err != nil {
			return nil, err
		}
		tree.SetCoarse(e.cfg.CoarseIndexLatch)
		ix.tree = tree
		ix.def.Root = tree.Root()
	}
	return rt, nil
}

// prepInfo is one in-doubt prepared transaction from analysis: its
// global id, coordinator shard, and reserved commit timestamp.
type prepInfo struct {
	gid   uint64
	coord uint32
	ts    uint64
}

// sysAnalysis is the result of the syslogs analysis scan.
type sysAnalysis struct {
	ckptLSN  uint64
	ckptBlob []byte
	ckptGen  uint64
	winners  map[uint64]uint64
	segOps   []wal.Record
	maxTS    uint64
	// prepared maps local txn id → prepare info for transactions whose
	// prepare has no matching local RecCommit/RecAbort — the in-doubt
	// set the conditional resolution phase settles.
	prepared map[uint64]prepInfo
}

// analyzeSyslogs scans the whole syslog: it finds the last checkpoint
// (LSN and catalog blob), the set of committed transactions, the set of
// in-doubt prepared transactions, and the maximum commit timestamp. It
// also raises the engine's transaction-id allocator past every id seen,
// so ids are unique across incarnations — otherwise a new transaction
// could reuse a pre-crash loser's id and a later recovery would
// resurrect the loser's log records along with it.
func (e *Engine) analyzeSyslogs() (sysAnalysis, error) {
	an := sysAnalysis{
		winners:  make(map[uint64]uint64),
		prepared: make(map[uint64]prepInfo),
	}
	rdr, err := e.syslog.NewReader(0)
	if err != nil {
		return an, err
	}
	for {
		rec, err := rdr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// repairLogTails truncated any torn tail before this scan, so a
			// torn frame here (wal.ErrTorn) means the log changed underneath
			// recovery — fail loudly rather than silently drop the suffix.
			return an, fmt.Errorf("core: syslogs analysis: %w", err)
		}
		e.recovery.syslogRecords++
		switch rec.Type {
		case wal.RecCheckpoint:
			an.ckptLSN = rec.LSN
			an.ckptBlob = rec.After
			an.ckptGen = rec.TxnID // checkpoint pins the sysimrslogs generation
			if rec.CommitTS > an.maxTS {
				an.maxTS = rec.CommitTS
			}
		case wal.RecCommit:
			e.bumpTxnID(rec.TxnID)
			an.winners[rec.TxnID] = rec.CommitTS
			delete(an.prepared, rec.TxnID) // prepared txn with a local outcome
			if rec.CommitTS > an.maxTS {
				an.maxTS = rec.CommitTS
			}
		case wal.RecAbort:
			e.bumpTxnID(rec.TxnID)
			delete(an.prepared, rec.TxnID) // prepared txn aborted locally
		case wal.RecPrepare:
			e.bumpTxnID(rec.TxnID)
			an.prepared[rec.TxnID] = prepInfo{gid: uint64(rec.RID), coord: rec.Table, ts: rec.CommitTS}
			if rec.CommitTS > an.maxTS {
				an.maxTS = rec.CommitTS
			}
		case wal.RecSegFreeze, wal.RecSegKill:
			// Cold-store ops are buffered (in LSN order) for the cold
			// rebuild phase; unlike heap redo they are not bounded by the
			// checkpoint — segments live only in the log.
			e.bumpTxnID(rec.TxnID)
			an.segOps = append(an.segOps, rec)
		case wal.RecDecide:
			// Decisions are not replay state (the coordinator resolves its
			// own prepares through winners), but they feed the in-memory
			// decision index peers probe at runtime — both this engine's
			// own decisions (Table = own shard id) and write-backs learned
			// from other coordinators. The TxnID (a gid, derived from a
			// local txn id somewhere) still advances the allocator.
			e.bumpTxnID(rec.TxnID)
			e.noteDecision(rec.Table, uint64(rec.RID), rec.Aux == 1)
		default:
			e.bumpTxnID(rec.TxnID)
		}
	}
	return an, nil
}

// resolveInDoubt settles every prepared transaction that analysis left
// in doubt, consulting Config.TwoPCResolver for the coordinator's
// durable decision. Commit verdicts promote the transaction into the
// winner set at its prepare-reserved timestamp; abort verdicts (the
// presumed-abort default) drop it. An Unknown verdict means the
// coordinator's log could not be read: the transaction is treated as
// aborted for replay — recovery must produce *some* consistent state —
// but the shard is parked ReadOnly so the possibly-wrong guess can
// never be compounded by new writes (DESIGN.md §12).
func (e *Engine) resolveInDoubt(an *sysAnalysis) (int64, error) {
	ri := &e.recovery
	ri.inDoubt = int64(len(an.prepared))
	ids := make([]uint64, 0, len(an.prepared))
	for id := range an.prepared {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		prep := an.prepared[id]
		outcome := TwoPCUnknown
		if e.cfg.TwoPCResolver != nil {
			outcome = e.cfg.TwoPCResolver(prep.gid, prep.coord)
		}
		switch outcome {
		case TwoPCCommit:
			an.winners[id] = prep.ts
			if prep.ts > an.maxTS {
				an.maxTS = prep.ts
			}
			ri.inDoubtCommitted++
			// Write the resolved outcome back into our own log (buffered;
			// flushed by the first post-recovery group commit) so the next
			// recovery resolves locally even if the coordinator is gone.
			// Losing it is harmless — resolution just runs again.
			cr := wal.Record{Type: wal.RecCommit, TxnID: id, CommitTS: prep.ts}
			_, _ = e.syslog.Append(&cr)
		case TwoPCAbort:
			ri.inDoubtAborted++
			ar := wal.Record{Type: wal.RecAbort, TxnID: id}
			_, _ = e.syslog.Append(&ar)
		default:
			ri.inDoubtUnresolved++
			e.inDoubtPending = append(e.inDoubtPending, InDoubtTxn{
				LocalID: id, GID: prep.gid, Coord: prep.coord, TS: prep.ts,
			})
			// Recoverable park, not the sticky poisoned-WAL verdict: the
			// node-level resolver re-probes peers and the decision journal
			// at runtime and exits the park in place (abort) or restarts
			// the shard with the decision discoverable (commit).
			e.health.parkReadOnly(fmt.Errorf(
				"core: in-doubt transaction %d (global %d): coordinator shard %d decision unavailable",
				id, prep.gid, prep.coord))
		}
	}
	return ri.inDoubt, nil
}

// rebuildColdStore replays the buffered cold-store ops of committed
// transactions, in log order: a freeze re-opens its segment blob and
// publishes it at the winner's commit timestamp; a kill re-marks the
// row's cold copy dead. Segment RIDs also raise the virtual-sequence
// allocators — a frozen row's IMRS insert may have been compacted out
// of sysimrslogs, leaving the segment as the only record of its RID.
func (e *Engine) rebuildColdStore(ops []wal.Record, winners map[uint64]uint64) (int64, error) {
	var applied int64
	for _, op := range ops {
		ts, committed := winners[op.TxnID]
		if !committed {
			continue
		}
		switch op.Type {
		case wal.RecSegFreeze:
			seg, err := colseg.Open(op.After)
			if err != nil {
				return applied, fmt.Errorf("core: cold rebuild: %w", err)
			}
			cp := e.cat.PartitionByID(seg.Part())
			if cp == nil {
				if e.cat.DroppedPartition(seg.Part()) {
					continue // segment of a dropped table
				}
				return applied, fmt.Errorf("core: cold rebuild references unknown partition %d", seg.Part())
			}
			for i := 0; i < seg.Rows(); i++ {
				if r := seg.RIDAt(i); r.IsVirtual() {
					cp.BumpVirtualSeq(r.Seq())
				}
			}
			seg.FreezeTS = ts
			e.cold.Publish(seg)
		case wal.RecSegKill:
			e.cold.Kill(op.RID, ts)
		}
		applied++
	}
	return applied, nil
}

// bumpTxnID raises the transaction-id allocator to at least id.
func (e *Engine) bumpTxnID(id uint64) {
	for {
		cur := e.nextTxnID.Load()
		if cur >= id || e.nextTxnID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// ensurePages extends the data device so page id pid exists (pages
// allocated after the last checkpoint may be missing after a crash).
func (e *Engine) ensurePages(pid uint32) error {
	for e.dataDev.NumPages() <= pid {
		if _, err := e.dataDev.AllocatePage(); err != nil {
			return err
		}
	}
	return nil
}

// redoSyslogs re-applies committed page-store operations after the
// checkpoint, returning how many it applied. With the no-steal buffer
// policy, on-disk pages hold exactly the committed state as of the
// checkpoint, so losers were never persisted and no undo pass is
// needed. This phase stays serial: heap pages are allocated in log
// order (ensurePages extends the device sequentially), so unlike the
// IMRS replay the records do not commute per partition.
//
// Slot-state conflicts are reconciled, not fatal. The winner set can
// contain durable losers: a transaction whose records (commit marker
// included) reached the backend but whose sync failed, so the live
// engine rolled it back in memory and kept running. Work committed
// after the rollback assumed its effects were undone, and the two
// histories can disagree about one physical slot — a delete of a slot
// an earlier durable loser already emptied, an update of it, or an
// insert onto a slot the loser's replayed effects left occupied.
// Applying records in log order with last-writer-wins per slot
// converges on a state consistent with what the surviving transactions
// observed: a delete of a dead slot is already satisfied, an update of
// a dead slot revives it with the newer image, an insert onto a live
// slot overwrites it. Only errors.Is-matched slot-state conflicts are
// forgiven — structural failures (unknown partition, out-of-range
// slot, oversized record) still abort recovery — and each one is
// counted in RecoverySnapshot.RedoConflicts so a recovery that had to
// reconcile histories is visible.
func (e *Engine) redoSyslogs(ckptLSN uint64, winners map[uint64]uint64) (int64, error) {
	rdr, err := e.syslog.NewReader(ckptLSN)
	if err != nil {
		return 0, err
	}
	var applied int64
	for {
		rec, err := rdr.Next()
		if err == io.EOF {
			return applied, nil
		}
		if err != nil {
			return applied, fmt.Errorf("core: syslogs redo: %w", err)
		}
		if rec.LSN <= ckptLSN {
			continue
		}
		switch rec.Type {
		case wal.RecHeapInsert, wal.RecHeapUpdate, wal.RecHeapDelete:
		default:
			continue // commit/abort/checkpoint markers carry no heap work
		}
		if _, committed := winners[rec.TxnID]; !committed {
			continue
		}
		prt := e.partByID(rec.RID.Partition())
		if prt == nil {
			if e.cat.DroppedPartition(rec.RID.Partition()) {
				continue // record of a dropped table
			}
			return applied, fmt.Errorf("core: redo references unknown partition %v", rec.RID)
		}
		switch rec.Type {
		case wal.RecHeapInsert:
			if err := e.ensurePages(uint32(rec.RID.Page())); err != nil {
				return applied, err
			}
			err := prt.heap.InsertAt(rec.RID, rec.After)
			if errors.Is(err, page.ErrSlotLive) {
				// A durable loser's replayed insert holds the slot the
				// live engine handed to this row; the later record is
				// the state surviving transactions saw.
				e.recovery.redoConflicts++
				err = prt.heap.Update(rec.RID, rec.After)
			}
			if err != nil {
				return applied, fmt.Errorf("core: redo insert %v: %w", rec.RID, err)
			}
		case wal.RecHeapUpdate:
			err := prt.heap.Update(rec.RID, rec.After)
			if errors.Is(err, page.ErrSlotDead) {
				// A durable loser's delete emptied the slot; the updater
				// ran against the rolled-back (live) row, so revive it
				// with the updater's image.
				e.recovery.redoConflicts++
				err = prt.heap.InsertAt(rec.RID, rec.After)
			}
			if err != nil {
				return applied, fmt.Errorf("core: redo update %v: %w", rec.RID, err)
			}
		case wal.RecHeapDelete:
			err := prt.heap.Delete(rec.RID)
			if errors.Is(err, page.ErrSlotDead) {
				// Double delete: a durable loser already emptied the
				// slot its rollback had restored live. The intent — row
				// gone — already holds.
				e.recovery.redoConflicts++
				err = nil
			}
			if err != nil {
				return applied, fmt.Errorf("core: redo delete %v: %w", rec.RID, err)
			}
		}
		applied++
	}
}

// imrsRedoOp is one committed IMRS operation awaiting application, with
// the commit timestamp of its transaction.
type imrsRedoOp struct {
	rec wal.Record
	ts  uint64
}

// replayIMRSLog redoes sysimrslogs from the beginning. A serial scan
// pass determines transaction outcomes exactly as commit order dictates:
// ops buffer per transaction and are scheduled at their IMRSCommit (a
// mixed transaction — Aux=1 — applies only if its syslogs Commit also
// survived). Committed ops are then demultiplexed by partition id and
// applied on the recovery worker pool. That parallelization is sound
// because records for different partitions commute — a RID lives in
// exactly one partition, so the per-entry apply order (insert before
// update before delete of the same RID) is preserved by applying each
// partition's ops in commit-log order on a single worker, and the
// structures shared across partitions (RID map, IMRS store accounting,
// catalog virtual-sequence bumps) are all concurrency-safe. The max
// commit timestamp is taken from the serial scan, before the fan-out.
func (e *Engine) replayIMRSLog(sysWinners map[uint64]uint64) (maxTS uint64, workers int, err error) {
	rdr, err := e.imrslog.NewReader(0)
	if err != nil {
		return 0, 1, err
	}
	pending := make(map[uint64][]wal.Record)
	perPart := make(map[rid.PartitionID][]imrsRedoOp)
	for {
		rec, err := rdr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 1, fmt.Errorf("core: sysimrslogs replay: %w", err)
		}
		e.bumpTxnID(rec.TxnID)
		switch rec.Type {
		case wal.RecIMRSInsert, wal.RecIMRSUpdate, wal.RecIMRSDelete:
			pending[rec.TxnID] = append(pending[rec.TxnID], rec)
		case wal.RecIMRSCommit:
			ops := pending[rec.TxnID]
			delete(pending, rec.TxnID)
			if rec.Aux == 1 {
				if _, ok := sysWinners[rec.TxnID]; !ok {
					continue // mixed transaction whose page half never committed
				}
			}
			if rec.CommitTS > maxTS {
				maxTS = rec.CommitTS
			}
			for _, op := range ops {
				part := op.RID.Partition()
				perPart[part] = append(perPart[part], imrsRedoOp{rec: op, ts: rec.CommitTS})
				e.recovery.imrsRecords++
			}
		}
	}

	parts := make([]rid.PartitionID, 0, len(perPart))
	for p := range perPart {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	workers = e.recoveryWorkers(len(parts))
	err = runParallel(workers, len(parts), func(i int) error {
		for _, op := range perPart[parts[i]] {
			if err := e.applyIMRSRedo(op.rec, op.ts); err != nil {
				return err
			}
		}
		return nil
	})
	return maxTS, workers, err
}

func (e *Engine) applyIMRSRedo(op wal.Record, ts uint64) error {
	part := op.RID.Partition()
	cp := e.cat.PartitionByID(part)
	if cp == nil {
		if e.cat.DroppedPartition(part) {
			return nil // record of a dropped table
		}
		return fmt.Errorf("core: IMRS redo references unknown partition %v", op.RID)
	}
	if op.RID.IsVirtual() {
		cp.BumpVirtualSeq(op.RID.Seq())
	}
	switch op.Type {
	case wal.RecIMRSInsert:
		en, err := e.store.CreateEntry(op.RID, part, imrs.Origin(op.Aux), op.After, op.TxnID)
		if err != nil {
			return fmt.Errorf("core: IMRS redo insert %v: %w", op.RID, err)
		}
		en.MarkDirty()
		e.store.Commit(en.Head(), ts)
		en.Touch(ts)
		e.rmap.Put(op.RID, en)
	case wal.RecIMRSUpdate:
		en := e.rmap.Get(op.RID)
		if en == nil {
			// Update of a cached (never-logged) row: upsert it.
			en2, err := e.store.CreateEntry(op.RID, part, imrs.Origin(op.Aux), op.After, op.TxnID)
			if err != nil {
				return fmt.Errorf("core: IMRS redo upsert %v: %w", op.RID, err)
			}
			en2.MarkDirty()
			e.store.Commit(en2.Head(), ts)
			en2.Touch(ts)
			e.rmap.Put(op.RID, en2)
			return nil
		}
		v, err := e.store.AddVersion(en, op.After, op.TxnID)
		if err != nil {
			return fmt.Errorf("core: IMRS redo update %v: %w", op.RID, err)
		}
		e.store.Commit(v, ts)
		en.Touch(ts)
		// No snapshots exist during recovery: reclaim the old version now.
		if old := v.Older(); old != nil {
			v.TruncateOlder()
			e.store.FreeVersion(part, old)
		}
	case wal.RecIMRSDelete:
		en := e.rmap.Get(op.RID)
		if en != nil {
			en.MarkPacked()
			e.rmap.Delete(op.RID, en)
			e.store.RemoveEntry(en)
		}
	}
	return nil
}

// indexFeed accumulates the bulk-load input for one index tree across
// the parallel collect tasks.
type indexFeed struct {
	ix    *indexRT
	mu    sync.Mutex
	items []btree.Item
}

// rebuildDerivedState runs the last two recovery phases. Index rebuild:
// partition-parallel collect tasks scan the recovered heaps and IMRS
// entries, decode each row once, and emit (key, RID) pairs per index;
// then each index sorts its pairs and bulk-loads its B+tree (index-
// parallel — a tree is fed by one worker, so no tree-level concurrency
// is needed). Queue rebuild: every live IMRS entry is re-enqueued on
// its pack queue in coldness order.
//
// Two recovered-entry defects are fixed here. Entries whose newest
// committed image is nil (a committed tombstone that was never swept)
// used to be skipped before the enqueue, leaking them permanently —
// invisible to lookups, absent from every pack queue, never reclaimed;
// they are now reclaimed on the spot. And entries used to be enqueued
// in rmap iteration (i.e. map-random) order, destroying the relaxed-LRU
// coldness order the packer depends on; they are now sorted by last
// access so the first post-restart pack cycle evicts actually-cold rows.
func (e *Engine) rebuildDerivedState() error {
	e.mu.RLock()
	tables := make([]*tableRT, 0, len(e.byID))
	for _, rt := range e.byID {
		tables = append(tables, rt)
	}
	e.mu.RUnlock()

	// Demux recovered entries by partition for the per-partition tasks.
	entriesByPart := make(map[rid.PartitionID][]*imrs.Entry)
	var rErr error
	e.rmap.Range(func(r0 rid.RID, en *imrs.Entry) bool {
		if e.partByID(r0.Partition()) == nil {
			if e.cat.DroppedPartition(r0.Partition()) {
				return true // entry of a dropped table; leave it out of derived state
			}
			rErr = fmt.Errorf("core: recovered entry in unknown partition %v", r0)
			return false
		}
		entriesByPart[r0.Partition()] = append(entriesByPart[r0.Partition()], en)
		return true
	})
	if rErr != nil {
		return rErr
	}

	type collectTask struct {
		rt  *tableRT
		prt *partRT
	}
	var tasks []collectTask
	var feeds []*indexFeed
	feedOf := make(map[*indexRT]*indexFeed)
	for _, rt := range tables {
		for _, prt := range rt.parts {
			tasks = append(tasks, collectTask{rt: rt, prt: prt})
		}
		for _, ix := range rt.indexes {
			f := &indexFeed{ix: ix}
			feeds = append(feeds, f)
			feedOf[ix] = f
		}
	}

	var live []*imrs.Entry // entries to enqueue, gathered across tasks
	var liveMu sync.Mutex

	collectWorkers := e.recoveryWorkers(len(tasks))
	buildWorkers := e.recoveryWorkers(len(feeds))
	workers := collectWorkers
	if buildWorkers > workers {
		workers = buildWorkers
	}

	err := e.recovery.phase(PhaseIndexRebuild, func() (int64, int, error) {
		err := runParallel(collectWorkers, len(tasks), func(i int) error {
			return e.collectPartition(tasks[i].rt, tasks[i].prt,
				entriesByPart[tasks[i].prt.cat.ID], feedOf, &live, &liveMu)
		})
		if err != nil {
			return e.recovery.rowsIndexed.Load(), workers, err
		}
		err = runParallel(buildWorkers, len(feeds), func(i int) error {
			f := feeds[i]
			sort.Slice(f.items, func(a, b int) bool {
				return bytes.Compare(f.items[a].Key, f.items[b].Key) < 0
			})
			if err := f.ix.tree.BulkLoad(f.items); err != nil {
				return fmt.Errorf("core: index rebuild %s: %w", f.ix.def.Name, err)
			}
			f.ix.def.Root = f.ix.tree.Root()
			return nil
		})
		return e.recovery.rowsIndexed.Load(), workers, err
	})
	if err != nil {
		return err
	}

	return e.recovery.phase(PhaseQueueRebuild, func() (int64, int, error) {
		// Coldest first: the relaxed-LRU queues are consumed head-first by
		// the packer, so ascending last-access restores the pre-crash
		// coldness order. RID breaks ties deterministically (entries
		// committed at the same timestamp), which keeps the rebuilt order
		// independent of the collect tasks' completion order.
		sort.Slice(live, func(i, j int) bool {
			ai, aj := live[i].LastAccess(), live[j].LastAccess()
			if ai != aj {
				return ai < aj
			}
			return live[i].RID < live[j].RID
		})
		for _, en := range live {
			e.queues.Enqueue(en)
		}
		e.recovery.entriesEnqueued = int64(len(live))
		return int64(len(live)), 1, nil
	})
}

// collectPartition gathers one partition's index keys: heap rows not
// shadowed by an IMRS entry, then the newest committed image of each
// IMRS entry. Dead entries (no visible committed image) are reclaimed —
// see rebuildDerivedState. Runs on the recovery worker pool; partitions
// are disjoint (a RID maps to one partition, so each heap row and rmap
// entry is seen by exactly one task), and the shared feeds/live
// accumulators are mutex-guarded.
func (e *Engine) collectPartition(rt *tableRT, prt *partRT, entries []*imrs.Entry,
	feedOf map[*indexRT]*indexFeed, live *[]*imrs.Entry, liveMu *sync.Mutex) error {
	local := make([][]btree.Item, len(rt.indexes))
	var rows int64

	// Segment pass: index every live, newest cold copy. Frozen rows keep
	// their RIDs, so (key, RID) pairs come straight off the segments.
	for _, seg := range e.cold.Segments(prt.cat.ID) {
		if seg.TableID() != rt.cat.ID {
			continue
		}
		for i := 0; i < seg.Rows(); i++ {
			r0 := seg.RIDAt(i)
			if seg.KillTS(i) != 0 || !e.cold.IsNewest(r0, seg, i) {
				continue
			}
			if e.rmap.Get(r0) != nil {
				continue // a newer IMRS image indexes the RID below
			}
			enc, err := seg.EncodeRowAt(i, nil)
			if err != nil {
				return err
			}
			if err := e.collectRowKeys(rt, r0, enc, nil, local); err != nil {
				return err
			}
			rows++
		}
	}

	var scanErr error
	err := prt.heap.Scan(func(r0 rid.RID, data []byte) bool {
		if e.rmap.Get(r0) != nil {
			return true // indexed from its IMRS image below
		}
		if _, _, k, ok := e.cold.Lookup(r0); ok && k == 0 {
			return true // stale heap copy shadowed by a live segment row
		}
		if err := e.collectRowKeys(rt, r0, data, nil, local); err != nil {
			scanErr = err
			return false
		}
		rows++
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return err
	}

	var localLive []*imrs.Entry
	for _, en := range entries {
		v := en.Visible(math.MaxUint64, 0)
		if v == nil || v.Data() == nil {
			// Committed tombstone (or fully reclaimed image) that survived
			// in the log: nothing to index, and leaving it in the RID map
			// with no queue membership would leak it forever. Reclaim now.
			en.MarkPacked()
			e.rmap.Delete(en.RID, en)
			e.store.RemoveEntry(en)
			e.recovery.entriesReclaimed.Add(1)
			continue
		}
		if err := e.collectRowKeys(rt, en.RID, v.Data(), en, local); err != nil {
			return err
		}
		rows++
		localLive = append(localLive, en)
	}

	for i, ix := range rt.indexes {
		if len(local[i]) == 0 {
			continue
		}
		f := feedOf[ix]
		f.mu.Lock()
		f.items = append(f.items, local[i]...)
		f.mu.Unlock()
	}
	if len(localLive) > 0 {
		liveMu.Lock()
		*live = append(*live, localLive...)
		liveMu.Unlock()
	}
	e.recovery.rowsIndexed.Add(rows)
	return nil
}

// collectRowKeys decodes one recovered row and appends its key for each
// of the table's indexes to local (parallel to rt.indexes). IMRS-backed
// rows (en != nil) also populate the hash fast path here — hash puts
// are concurrency-safe and order-independent, so they need no separate
// build step.
func (e *Engine) collectRowKeys(rt *tableRT, r0 rid.RID, data []byte, en *imrs.Entry, local [][]btree.Item) error {
	rw, err := e.decode(rt, data)
	if err != nil {
		return err
	}
	for i, ix := range rt.indexes {
		k, err := indexKey(ix, rw, r0)
		if err != nil {
			return err
		}
		local[i] = append(local[i], btree.Item{Key: k, RID: r0})
		if ix.hash != nil && en != nil {
			ix.hash.Put(k, en)
		}
	}
	return nil
}
