package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/catalog"
	"repro/internal/imrs"
	"repro/internal/index/btree"
	"repro/internal/rid"
	"repro/internal/wal"
)

// recover brings the engine to a consistent state at Open: it loads the
// last checkpoint's catalog from syslogs, redoes committed page-store
// work after the checkpoint, replays sysimrslogs fully into the IMRS
// (redo-only; the IMRS is never checkpointed), and rebuilds every index
// from the recovered base data. The two logs recover in this lock-step
// order so a transaction spanning both stores is applied all-or-nothing
// (paper Section II).
func (e *Engine) recover() error {
	if err := e.repairLogTails(); err != nil {
		return err
	}
	ckptLSN, ckptBlob, ckptGen, sysWinners, maxTS, err := e.analyzeSyslogs()
	if err != nil {
		return err
	}
	if ckptBlob == nil {
		// Fresh database.
		e.cat = catalog.New()
		return nil
	}
	if ckptGen != e.imrsGen {
		// The last checkpoint pinned a compacted sysimrslogs generation:
		// replay from that generation, not the original backend.
		if e.cfg.IMRSLogFactory == nil {
			return fmt.Errorf("core: checkpoint references sysimrslogs generation %d but no IMRSLogFactory is configured", ckptGen)
		}
		backend, err := e.cfg.IMRSLogFactory(ckptGen, false)
		if err != nil {
			return err
		}
		log, err := wal.NewLog(backend)
		if err != nil {
			return err
		}
		if _, err := log.RepairTail(); err != nil {
			return fmt.Errorf("core: sysimrslogs generation %d: %w", ckptGen, err)
		}
		_ = e.imrslog.Close()
		e.imrslog = log
		e.imrsGen = ckptGen
	}
	cat, err := catalog.DecodeSnapshot(ckptBlob)
	if err != nil {
		return err
	}
	e.cat = cat
	for _, t := range cat.Tables() {
		if _, err := e.mountRecoveredTable(t); err != nil {
			return err
		}
	}
	if err := e.redoSyslogs(ckptLSN, sysWinners); err != nil {
		return err
	}
	imrsMax, err := e.replayIMRSLog(sysWinners)
	if err != nil {
		return err
	}
	if imrsMax > maxTS {
		maxTS = imrsMax
	}
	e.clock.AdvanceTo(maxTS)
	return e.rebuildIndexes()
}

// repairLogTails truncates any torn final frame off both logs before
// recovery scans them and — critically — before the engine resumes
// appending. NewLog bases LSNs on the raw backend size, so without the
// truncation new records would land past the torn garbage, and every
// later scan would stop at the old tear and silently discard
// acknowledged commits and checkpoints appended after it. RepairTail
// fails (and so does recovery) when valid frames follow the tear:
// that is mid-log corruption, not a crash artifact.
func (e *Engine) repairLogTails() error {
	if _, err := e.syslog.RepairTail(); err != nil {
		return fmt.Errorf("core: syslogs: %w", err)
	}
	if _, err := e.imrslog.RepairTail(); err != nil {
		return fmt.Errorf("core: sysimrslogs: %w", err)
	}
	return nil
}

// mountRecoveredTable mounts a table with restored heaps and fresh
// (empty) index trees; rebuildIndexes repopulates them.
func (e *Engine) mountRecoveredTable(t *catalog.Table) (*tableRT, error) {
	rt, err := e.mountTable(t, false)
	if err != nil {
		return nil, err
	}
	for _, ix := range rt.indexes {
		tree, err := btree.New(e.pool)
		if err != nil {
			return nil, err
		}
		tree.SetCoarse(e.cfg.CoarseIndexLatch)
		ix.tree = tree
		ix.def.Root = tree.Root()
	}
	return rt, nil
}

// analyzeSyslogs scans the whole syslog: it finds the last checkpoint
// (LSN and catalog blob), the set of committed transactions, and the
// maximum commit timestamp. It also raises the engine's transaction-id
// allocator past every id seen, so ids are unique across incarnations —
// otherwise a new transaction could reuse a pre-crash loser's id and a
// later recovery would resurrect the loser's log records along with it.
func (e *Engine) analyzeSyslogs() (ckptLSN uint64, ckptBlob []byte, ckptGen uint64, winners map[uint64]uint64, maxTS uint64, err error) {
	winners = make(map[uint64]uint64)
	rdr, err := e.syslog.NewReader(0)
	if err != nil {
		return 0, nil, 0, nil, 0, err
	}
	for {
		rec, err := rdr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// repairLogTails truncated any torn tail before this scan, so a
			// torn frame here (wal.ErrTorn) means the log changed underneath
			// recovery — fail loudly rather than silently drop the suffix.
			return 0, nil, 0, nil, 0, fmt.Errorf("core: syslogs analysis: %w", err)
		}
		switch rec.Type {
		case wal.RecCheckpoint:
			ckptLSN = rec.LSN
			ckptBlob = rec.After
			ckptGen = rec.TxnID // checkpoint pins the sysimrslogs generation
			if rec.CommitTS > maxTS {
				maxTS = rec.CommitTS
			}
		case wal.RecCommit:
			e.bumpTxnID(rec.TxnID)
			winners[rec.TxnID] = rec.CommitTS
			if rec.CommitTS > maxTS {
				maxTS = rec.CommitTS
			}
		default:
			e.bumpTxnID(rec.TxnID)
		}
	}
	return ckptLSN, ckptBlob, ckptGen, winners, maxTS, nil
}

// bumpTxnID raises the transaction-id allocator to at least id.
func (e *Engine) bumpTxnID(id uint64) {
	for {
		cur := e.nextTxnID.Load()
		if cur >= id || e.nextTxnID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// ensurePages extends the data device so page id pid exists (pages
// allocated after the last checkpoint may be missing after a crash).
func (e *Engine) ensurePages(pid uint32) error {
	for e.dataDev.NumPages() <= pid {
		if _, err := e.dataDev.AllocatePage(); err != nil {
			return err
		}
	}
	return nil
}

// redoSyslogs re-applies committed page-store operations after the
// checkpoint. With the no-steal buffer policy, on-disk pages hold
// exactly the committed state as of the checkpoint, so losers were
// never persisted and no undo pass is needed.
func (e *Engine) redoSyslogs(ckptLSN uint64, winners map[uint64]uint64) error {
	rdr, err := e.syslog.NewReader(ckptLSN)
	if err != nil {
		return err
	}
	for {
		rec, err := rdr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("core: syslogs redo: %w", err)
		}
		if rec.LSN <= ckptLSN {
			continue
		}
		switch rec.Type {
		case wal.RecHeapInsert, wal.RecHeapUpdate, wal.RecHeapDelete:
		default:
			continue // commit/abort/checkpoint markers carry no heap work
		}
		if _, committed := winners[rec.TxnID]; !committed {
			continue
		}
		prt := e.partByID(rec.RID.Partition())
		if prt == nil {
			return fmt.Errorf("core: redo references unknown partition %v", rec.RID)
		}
		switch rec.Type {
		case wal.RecHeapInsert:
			if err := e.ensurePages(uint32(rec.RID.Page())); err != nil {
				return err
			}
			if err := prt.heap.InsertAt(rec.RID, rec.After); err != nil {
				return fmt.Errorf("core: redo insert %v: %w", rec.RID, err)
			}
		case wal.RecHeapUpdate:
			if err := prt.heap.Update(rec.RID, rec.After); err != nil {
				return fmt.Errorf("core: redo update %v: %w", rec.RID, err)
			}
		case wal.RecHeapDelete:
			if err := prt.heap.Delete(rec.RID); err != nil {
				return fmt.Errorf("core: redo delete %v: %w", rec.RID, err)
			}
		}
	}
}

// replayIMRSLog redoes sysimrslogs from the beginning: committed IMRS
// transactions are applied in commit order; a mixed transaction (Aux=1
// on its IMRSCommit) applies only if its syslogs Commit also survived.
func (e *Engine) replayIMRSLog(sysWinners map[uint64]uint64) (maxTS uint64, err error) {
	rdr, err := e.imrslog.NewReader(0)
	if err != nil {
		return 0, err
	}
	pending := make(map[uint64][]wal.Record)
	for {
		rec, err := rdr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("core: sysimrslogs replay: %w", err)
		}
		e.bumpTxnID(rec.TxnID)
		switch rec.Type {
		case wal.RecIMRSInsert, wal.RecIMRSUpdate, wal.RecIMRSDelete:
			pending[rec.TxnID] = append(pending[rec.TxnID], rec)
		case wal.RecIMRSCommit:
			ops := pending[rec.TxnID]
			delete(pending, rec.TxnID)
			if rec.Aux == 1 {
				if _, ok := sysWinners[rec.TxnID]; !ok {
					continue // mixed transaction whose page half never committed
				}
			}
			if rec.CommitTS > maxTS {
				maxTS = rec.CommitTS
			}
			for _, op := range ops {
				if err := e.applyIMRSRedo(op, rec.CommitTS); err != nil {
					return 0, err
				}
			}
		}
	}
	return maxTS, nil
}

func (e *Engine) applyIMRSRedo(op wal.Record, ts uint64) error {
	part := op.RID.Partition()
	cp := e.cat.PartitionByID(part)
	if cp == nil {
		return fmt.Errorf("core: IMRS redo references unknown partition %v", op.RID)
	}
	if op.RID.IsVirtual() {
		cp.BumpVirtualSeq(op.RID.Seq())
	}
	switch op.Type {
	case wal.RecIMRSInsert:
		en, err := e.store.CreateEntry(op.RID, part, imrs.Origin(op.Aux), op.After, op.TxnID)
		if err != nil {
			return fmt.Errorf("core: IMRS redo insert %v: %w", op.RID, err)
		}
		en.MarkDirty()
		e.store.Commit(en.Head(), ts)
		en.Touch(ts)
		e.rmap.Put(op.RID, en)
	case wal.RecIMRSUpdate:
		en := e.rmap.Get(op.RID)
		if en == nil {
			// Update of a cached (never-logged) row: upsert it.
			en2, err := e.store.CreateEntry(op.RID, part, imrs.Origin(op.Aux), op.After, op.TxnID)
			if err != nil {
				return fmt.Errorf("core: IMRS redo upsert %v: %w", op.RID, err)
			}
			en2.MarkDirty()
			e.store.Commit(en2.Head(), ts)
			en2.Touch(ts)
			e.rmap.Put(op.RID, en2)
			return nil
		}
		v, err := e.store.AddVersion(en, op.After, op.TxnID)
		if err != nil {
			return fmt.Errorf("core: IMRS redo update %v: %w", op.RID, err)
		}
		e.store.Commit(v, ts)
		en.Touch(ts)
		// No snapshots exist during recovery: reclaim the old version now.
		if old := v.Older(); old != nil {
			v.TruncateOlder()
			e.store.FreeVersion(part, old)
		}
	case wal.RecIMRSDelete:
		en := e.rmap.Get(op.RID)
		if en != nil {
			en.MarkPacked()
			e.rmap.Delete(op.RID, en)
			e.store.RemoveEntry(en)
		}
	}
	return nil
}

// rebuildIndexes repopulates every table's B-trees and hash indexes
// from the recovered heaps and IMRS entries, and enqueues IMRS entries
// on their ILM queues.
func (e *Engine) rebuildIndexes() error {
	e.mu.RLock()
	tables := make([]*tableRT, 0, len(e.byID))
	for _, rt := range e.byID {
		tables = append(tables, rt)
	}
	e.mu.RUnlock()

	for _, rt := range tables {
		for _, prt := range rt.parts {
			var scanErr error
			err := prt.heap.Scan(func(r0 rid.RID, data []byte) bool {
				if e.rmap.Get(r0) != nil {
					return true // indexed from its IMRS image below
				}
				if err := e.indexRowForRecovery(rt, r0, data, nil); err != nil {
					scanErr = err
					return false
				}
				return true
			})
			if err != nil {
				return err
			}
			if scanErr != nil {
				return scanErr
			}
		}
	}
	// IMRS entries: index the newest committed image.
	var rErr error
	e.rmap.Range(func(r0 rid.RID, en *imrs.Entry) bool {
		prt := e.partByID(r0.Partition())
		if prt == nil {
			rErr = fmt.Errorf("core: recovered entry in unknown partition %v", r0)
			return false
		}
		e.mu.RLock()
		rt := e.byID[prt.cat.Table.ID]
		e.mu.RUnlock()
		v := en.Visible(math.MaxUint64, 0)
		if v == nil {
			return true
		}
		if err := e.indexRowForRecovery(rt, r0, v.Data(), en); err != nil {
			rErr = err
			return false
		}
		e.queues.Enqueue(en)
		return true
	})
	return rErr
}

func (e *Engine) indexRowForRecovery(rt *tableRT, r0 rid.RID, data []byte, en *imrs.Entry) error {
	rw, err := e.decode(rt, data)
	if err != nil {
		return err
	}
	for _, ix := range rt.indexes {
		k, err := indexKey(ix, rw, r0)
		if err != nil {
			return err
		}
		if err := ix.tree.Insert(k, r0); err != nil {
			return fmt.Errorf("core: index rebuild %s: %w", ix.def.Name, err)
		}
		if ix.hash != nil && en != nil {
			ix.hash.Put(k, en)
		}
	}
	return nil
}
