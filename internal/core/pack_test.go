package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/row"
)

// fillPastThreshold inserts rows until IMRS utilization exceeds frac.
func fillPastThreshold(t *testing.T, e *Engine, frac float64) int64 {
	t.Helper()
	target := int64(frac * float64(e.Store().Allocator().Capacity()))
	var id int64
	for e.Store().Allocator().Used() < target {
		tx := e.Begin()
		for i := 0; i < 50; i++ {
			id++
			if err := tx.Insert("items", itemRow(id, fmt.Sprintf("name-%d-padpadpadpadpadpad", id), id)); err != nil {
				t.Fatal(err)
			}
		}
		mustCommit(t, tx)
	}
	return id
}

func TestPackEndToEnd(t *testing.T) {
	e := openEngine(t, func(c *Config) {
		c.IMRSCacheBytes = 1 << 20
		c.PackInterval = time.Hour // background loop off; drive manually
		c.ILM.InitialTSF = 1
		c.ILM.PackCyclePct = 0.30
	})
	createItems(t, e)
	n := fillPastThreshold(t, e, 0.85)

	// Make every row stale so the TSF calls them cold.
	for i := 0; i < 100; i++ {
		e.Clock().Tick()
	}
	usedBefore := e.Store().Allocator().Used()
	// Queue maintenance is asynchronous (GC); wait for it to catch up.
	waitQueueLen(t, e, int(n))
	e.Packer().Step()
	if e.Packer().RowsPacked.Load() == 0 {
		t.Fatal("nothing packed")
	}
	if e.Store().Allocator().Used() >= usedBefore {
		t.Fatal("utilization did not drop")
	}

	// Every row must still be readable (from either store), with intact
	// content and working indexes.
	tx := e.Begin()
	for id := int64(1); id <= n; id++ {
		rw, ok, err := tx.Get("items", pk(id))
		if err != nil || !ok {
			t.Fatalf("row %d lost after pack: %v %v", id, ok, err)
		}
		if rw[2].Int() != id {
			t.Fatalf("row %d corrupted after pack", id)
		}
	}
	mustCommit(t, tx)
}

func waitQueueLen(t *testing.T, e *Engine, want int) {
	t.Helper()
	prt := e.table0(t, "items")
	for i := 0; i < 2000; i++ {
		if e.Queues().QueuedRows(prt.cat.ID) >= want {
			return
		}
		// GC ticks every millisecond.
		if i > 0 && i%100 == 0 {
			t.Logf("queued %d / %d", e.Queues().QueuedRows(prt.cat.ID), want)
		}
		sleepMs(1)
	}
	t.Fatalf("queue never reached %d rows (have %d)", want, e.Queues().QueuedRows(e.table0(t, "items").cat.ID))
}

func TestPackedRowUpdatableAgain(t *testing.T) {
	e := openEngine(t, func(c *Config) {
		c.IMRSCacheBytes = 1 << 20
		c.PackInterval = time.Hour
		c.ILM.InitialTSF = 1
		c.ILM.PackCyclePct = 0.50
	})
	createItems(t, e)
	n := fillPastThreshold(t, e, 0.85)
	for i := 0; i < 100; i++ {
		e.Clock().Tick()
	}
	waitQueueLen(t, e, int(n))
	e.Packer().Step()
	if e.Packer().RowsPacked.Load() == 0 {
		t.Fatal("nothing packed")
	}

	// Update a row that was packed to the page store: it migrates back.
	tx := e.Begin()
	ok, err := tx.Update("items", pk(1), func(r row.Row) (row.Row, error) {
		r[2] = row.Int64(-1)
		return r, nil
	})
	if err != nil || !ok {
		t.Fatalf("update packed row: %v %v", ok, err)
	}
	mustCommit(t, tx)

	tx2 := e.Begin()
	rw, ok, _ := tx2.Get("items", pk(1))
	if !ok || rw[2].Int() != -1 {
		t.Fatalf("packed-then-updated row wrong: %v %v", rw, ok)
	}
	mustCommit(t, tx2)
}

func TestPackSkipsLockedRows(t *testing.T) {
	e := openEngine(t, func(c *Config) {
		c.IMRSCacheBytes = 1 << 20
		c.PackInterval = time.Hour
		c.ILM.InitialTSF = 1
		c.ILM.PackCyclePct = 0.90
	})
	createItems(t, e)
	n := fillPastThreshold(t, e, 0.80)
	for i := 0; i < 100; i++ {
		e.Clock().Tick()
	}
	waitQueueLen(t, e, int(n))

	// Hold a row lock via an open update.
	tx := e.Begin()
	if _, err := tx.Update("items", pk(1), func(r row.Row) (row.Row, error) {
		r[2] = row.Int64(1000)
		return r, nil
	}); err != nil {
		t.Fatal(err)
	}

	e.Packer().Step()
	// The locked row must not have been packed: its entry is intact.
	mustCommit(t, tx)
	tx2 := e.Begin()
	rw, ok, err := tx2.Get("items", pk(1))
	if err != nil || !ok || rw[2].Int() != 1000 {
		t.Fatalf("locked row damaged by pack: %v %v %v", rw, ok, err)
	}
	mustCommit(t, tx2)
}

func TestStableUtilizationUnderLoad(t *testing.T) {
	e := openEngine(t, func(c *Config) {
		c.IMRSCacheBytes = 1 << 20
		c.PackInterval = time.Hour
		c.ILM.InitialTSF = 50
		c.ILM.PackCyclePct = 0.10
	})
	createItems(t, e)

	capB := float64(e.Store().Allocator().Capacity())
	// ~1 KB rows: 60 rounds × 40 rows ≈ 2.4 MB pushed through a 1 MB
	// cache, so pack must continuously evict to keep utilization stable.
	payload := make([]byte, 980)
	for i := range payload {
		payload[i] = 'p'
	}
	var id int64
	maxUtil := 0.0
	for round := 0; round < 60; round++ {
		tx := e.Begin()
		for i := 0; i < 40; i++ {
			id++
			if err := tx.Insert("items", itemRow(id, string(payload), id)); err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		}
		mustCommit(t, tx)
		sleepMs(2) // let GC enqueue
		e.Packer().Step()
		if u := float64(e.Store().Allocator().Used()) / capB; u > maxUtil {
			maxUtil = u
		}
	}
	// Pack must keep utilization from running away to 100%.
	if maxUtil > 0.99 {
		t.Fatalf("utilization ran away: %.2f", maxUtil)
	}
	if e.Packer().RowsPacked.Load() == 0 {
		t.Fatal("pack never engaged")
	}
}
