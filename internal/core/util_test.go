package core

import (
	"time"

	"repro/internal/catalog"
)

func sleepMs(n int) { time.Sleep(time.Duration(n) * time.Millisecond) }

// catalogSpecNone returns the default single-partition spec.
func catalogSpecNone() catalog.PartitionSpec { return catalog.PartitionSpec{} }
