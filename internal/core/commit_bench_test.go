package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/catalog"
)

// benchEngine opens an engine for the commit benchmark on either
// in-memory or file-backed storage, with the group-commit pipeline on
// or off.
func benchEngine(b *testing.B, backend string, group bool, delay time.Duration) *Engine {
	b.Helper()
	cfg := DefaultConfig()
	cfg.IMRSCacheBytes = 256 << 20
	cfg.PackInterval = time.Hour // isolate the commit path
	cfg.DisableGroupCommit = !group
	cfg.CommitCoalesceDelay = delay
	if backend == "file" {
		cfg.Dir = b.TempDir()
	}
	e, err := Open(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	if _, err := e.CreateTable("items", testSchema(), []string{"id"}, catalog.PartitionSpec{}, nil); err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkConcurrentCommit measures committed transactions per second
// for one-row insert transactions across goroutine counts, storage
// backends, and commit modes (group = the coalescing pipeline, sync =
// flush-per-commit baseline). The commits/s metric on the file backend
// is the headline number: group commit amortizes the fsync.
func BenchmarkConcurrentCommit(b *testing.B) {
	for _, backend := range []string{"mem", "file"} {
		for _, mode := range []string{"group", "sync"} {
			for _, workers := range []int{1, 4, 8, 16} {
				name := fmt.Sprintf("backend=%s/mode=%s/goroutines=%d", backend, mode, workers)
				b.Run(name, func(b *testing.B) {
					e := benchEngine(b, backend, mode == "group", 0)
					var next atomic.Int64
					next.Store(1)
					b.ResetTimer()
					var wg sync.WaitGroup
					per := b.N / workers
					if per == 0 {
						per = 1
					}
					for w := 0; w < workers; w++ {
						wg.Add(1)
						go func() {
							defer wg.Done()
							for i := 0; i < per; i++ {
								key := next.Add(1)
								tx := e.Begin()
								if err := tx.Insert("items", itemRow(key, "bench", key)); err != nil {
									b.Error(err)
									tx.Abort()
									return
								}
								if err := tx.Commit(); err != nil {
									b.Error(err)
									return
								}
							}
						}()
					}
					wg.Wait()
					b.StopTimer()
					commits := float64(per * workers)
					b.ReportMetric(commits/b.Elapsed().Seconds(), "commits/s")
				})
			}
		}
	}
}
