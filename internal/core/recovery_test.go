package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/row"
	"repro/internal/storage/disk"
	"repro/internal/wal"
)

// sharedStorage builds reusable in-memory devices so that a second Open
// sees exactly what the first engine made durable.
type sharedStorage struct {
	dev *disk.MemDevice
	sys *wal.MemBackend
	ims *wal.MemBackend
}

func newSharedStorage() *sharedStorage {
	return &sharedStorage{
		dev: disk.NewMemDevice(0, 0),
		sys: wal.NewMemBackend(),
		ims: wal.NewMemBackend(),
	}
}

func (s *sharedStorage) config(mut func(*Config)) Config {
	cfg := DefaultConfig()
	cfg.IMRSCacheBytes = 8 << 20
	cfg.BufferPoolPages = 256
	cfg.DataDevice = s.dev
	cfg.SysLogBackend = s.sys
	cfg.IMRSLogBackend = s.ims
	if mut != nil {
		mut(&cfg)
	}
	return cfg
}

func TestRestartAfterCleanClose(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)
	tx := e.Begin()
	for i := int64(1); i <= 100; i++ {
		if err := tx.Insert("items", itemRow(i, fmt.Sprintf("n%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(st.config(nil))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer e2.Close()
	if e2.Store().Rows() != 100 {
		t.Fatalf("recovered IMRS rows = %d, want 100", e2.Store().Rows())
	}
	tx2 := e2.Begin()
	for i := int64(1); i <= 100; i++ {
		rw, ok, err := tx2.Get("items", pk(i))
		if err != nil || !ok || rw[2].Int() != i {
			t.Fatalf("row %d after restart: %v %v %v", i, rw, ok, err)
		}
	}
	// Secondary index rebuilt.
	rows, err := tx2.LookupAll("items", "items_name", []row.Value{row.String("n50")})
	if err != nil || len(rows) != 1 {
		t.Fatalf("secondary lookup after restart: %d %v", len(rows), err)
	}
	mustCommit(t, tx2)

	// Engine usable for new writes, including fresh virtual RIDs that
	// must not collide with recovered ones.
	tx3 := e2.Begin()
	if err := tx3.Insert("items", itemRow(101, "new", 101)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx3)
}

func TestCrashRecoveryCommittedSurvivesUncommittedLost(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)

	tx := e.Begin()
	for i := int64(1); i <= 20; i++ {
		if err := tx.Insert("items", itemRow(i, "committed", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	// In-flight transaction at crash time: must vanish.
	loser := e.Begin()
	if err := loser.Insert("items", itemRow(999, "loser", 0)); err != nil {
		t.Fatal(err)
	}
	e.Halt() // crash

	e2, err := Open(st.config(nil))
	if err != nil {
		t.Fatalf("crash recovery: %v", err)
	}
	defer e2.Close()
	tx2 := e2.Begin()
	for i := int64(1); i <= 20; i++ {
		rw, ok, err := tx2.Get("items", pk(i))
		if err != nil || !ok || rw[1].Str() != "committed" {
			t.Fatalf("committed row %d lost: %v %v %v", i, rw, ok, err)
		}
	}
	if _, ok, _ := tx2.Get("items", pk(999)); ok {
		t.Fatal("uncommitted row survived the crash")
	}
	mustCommit(t, tx2)
}

func TestCrashRecoveryMixedStores(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)
	prt := e.table0(t, "items")

	// Page-store rows.
	prt.ilm.Pin(false)
	tx := e.Begin()
	for i := int64(1); i <= 10; i++ {
		_ = tx.Insert("items", itemRow(i, "page", i))
	}
	mustCommit(t, tx)
	// IMRS rows plus an update and a delete spanning stores.
	prt.ilm.Pin(true)
	tx = e.Begin()
	for i := int64(11); i <= 20; i++ {
		_ = tx.Insert("items", itemRow(i, "imrs", i))
	}
	mustCommit(t, tx)
	tx = e.Begin()
	if _, err := tx.Update("items", pk(5), func(r row.Row) (row.Row, error) {
		r[2] = row.Int64(500) // migrates page row 5 into the IMRS
		return r, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Delete("items", pk(15)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	e.Halt()

	e2, err := Open(st.config(nil))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer e2.Close()
	tx2 := e2.Begin()
	rw, ok, err := tx2.Get("items", pk(5))
	if err != nil || !ok || rw[2].Int() != 500 {
		t.Fatalf("migrated update lost: %v %v %v", rw, ok, err)
	}
	if _, ok, _ := tx2.Get("items", pk(15)); ok {
		t.Fatal("deleted row resurrected")
	}
	count := 0
	if err := tx2.ScanTable("items", func(row.Row) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 19 {
		t.Fatalf("scan after recovery = %d rows, want 19", count)
	}
	mustCommit(t, tx2)
}

func TestRecoveryAfterPack(t *testing.T) {
	st := newSharedStorage()
	cfg := st.config(func(c *Config) {
		c.IMRSCacheBytes = 1 << 20
		c.PackInterval = time.Hour
		c.ILM.InitialTSF = 1
		c.ILM.PackCyclePct = 0.50
	})
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)
	n := fillPastThreshold(t, e, 0.85)
	for i := 0; i < 100; i++ {
		e.Clock().Tick()
	}
	waitQueueLen(t, e, int(n))
	e.Packer().Step()
	if e.Packer().RowsPacked.Load() == 0 {
		t.Fatal("setup: nothing packed")
	}
	e.Halt() // crash right after pack

	e2, err := Open(st.config(func(c *Config) {
		c.IMRSCacheBytes = 4 << 20 // roomier on restart
	}))
	if err != nil {
		t.Fatalf("recovery after pack: %v", err)
	}
	defer e2.Close()
	tx := e2.Begin()
	for i := int64(1); i <= n; i++ {
		rw, ok, err := tx.Get("items", pk(i))
		if err != nil || !ok || rw[2].Int() != i {
			t.Fatalf("row %d after pack+crash: %v %v %v", i, rw, ok, err)
		}
	}
	mustCommit(t, tx)
}

func TestFileBackedRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Dir = dir
	cfg.IMRSCacheBytes = 8 << 20
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CreateTable("kv", row.MustSchema(
		row.Column{Name: "k", Kind: row.KindString},
		row.Column{Name: "v", Kind: row.KindBytes},
	), []string{"k"}, catalog.PartitionSpec{}, nil); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	for i := 0; i < 50; i++ {
		if err := tx.Insert("kv", row.Row{
			row.String(fmt.Sprintf("key-%02d", i)),
			row.Bytes([]byte{byte(i)}),
		}); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	cfg2 := DefaultConfig()
	cfg2.Dir = dir
	cfg2.IMRSCacheBytes = 8 << 20
	e2, err := Open(cfg2)
	if err != nil {
		t.Fatalf("file-backed reopen: %v", err)
	}
	defer e2.Close()
	tx2 := e2.Begin()
	for i := 0; i < 50; i++ {
		rw, ok, err := tx2.Get("kv", []row.Value{row.String(fmt.Sprintf("key-%02d", i))})
		if err != nil || !ok || rw[1].Raw()[0] != byte(i) {
			t.Fatalf("key %d after file reopen: %v %v %v", i, rw, ok, err)
		}
	}
	mustCommit(t, tx2)
}

func TestRangePartitionedTable(t *testing.T) {
	e := openEngine(t, nil)
	_, err := e.CreateTable("orders", testSchema(), []string{"id"},
		catalog.PartitionSpec{Kind: catalog.PartitionRange, Column: "id", Bounds: []int64{100, 200}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	for _, id := range []int64{5, 150, 500} {
		if err := tx.Insert("orders", itemRow(id, "o", id)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	// Rows land in distinct partitions.
	snap := e.Stats()
	withRows := 0
	for _, p := range snap.Partitions {
		if p.IMRSRows > 0 {
			withRows++
		}
	}
	if withRows != 3 {
		t.Fatalf("partitions with rows = %d, want 3", withRows)
	}
	tx2 := e.Begin()
	for _, id := range []int64{5, 150, 500} {
		if _, ok, _ := tx2.Get("orders", pk(id)); !ok {
			t.Fatalf("row %d missing across partitions", id)
		}
	}
	mustCommit(t, tx2)
}

// TestTxnIDsUniqueAcrossIncarnations guards against loser resurrection.
// Ops buffer until commit, so only transactions that reached commit
// processing appear in the logs — but a crash between the two logs'
// flushes leaves marker-less records behind, and a later transaction
// reusing that id would adopt them. Recovery therefore bumps the id
// allocator past every id it sees in either log; new transactions must
// start above the highest logged id.
func TestTxnIDsUniqueAcrossIncarnations(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)
	// Committed (logged) work, then an in-flight loser at crash time.
	tx := e.Begin()
	maxLoggedID := tx.ID()
	_ = tx.Insert("items", itemRow(1, "keep", 1))
	mustCommit(t, tx)
	loser := e.Begin()
	if err := loser.Insert("items", itemRow(666, "loser", 0)); err != nil {
		t.Fatal(err)
	}
	e.Halt()

	// Second incarnation: fresh transaction ids start above every id
	// that made it into the logs.
	e2, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	tx2 := e2.Begin()
	if tx2.ID() <= maxLoggedID {
		t.Fatalf("txn id %d collides with logged id %d", tx2.ID(), maxLoggedID)
	}
	if err := tx2.Insert("items", itemRow(2, "second", 2)); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx2)
	e2.Halt()

	// Third incarnation: the loser must still be gone and the committed
	// rows intact.
	e3, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	tx3 := e3.Begin()
	if _, ok, _ := tx3.Get("items", pk(666)); ok {
		t.Fatal("pre-crash loser resurrected")
	}
	for _, id := range []int64{1, 2} {
		if _, ok, _ := tx3.Get("items", pk(id)); !ok {
			t.Fatalf("committed row %d lost", id)
		}
	}
	mustCommit(t, tx3)
}
