package core

import (
	"math"

	"repro/internal/imrs"
	"repro/internal/rid"
	"repro/internal/storage/colseg"
	"repro/internal/wal"
)

// freezeEntries is the cold-store relocation path: instead of writing
// each row back to a slotted heap page, one pack transaction freezes the
// whole batch into a compressed column-grouped segment. Rows KEEP their
// RIDs — the RID map stays the single indirection layer, so no index is
// repointed — and point reads resolve through the cold directory.
//
// Per row:
//   - virtual rows and dirty physical rows are added to the segment
//     writer; the IMRS side logs a delete (sysimrslogs), and the frozen
//     image travels in the segment blob inside the syslogs RecSegFreeze;
//   - a dirty physical row leaves its stale heap copy IN PLACE: the
//     live cold entry shadows it on every read path, and the occupied
//     slot keeps the RID unique until delete/un-freeze retires both;
//   - clean cached rows just drop from the IMRS (the heap copy is
//     already authoritative), exactly like the legacy pack path;
//   - a row with a live older cold copy (possible if an un-freeze kill
//     was lost) logs RecSegKill so replay never sees two live copies.
//
// Side effects are strictly post-commit, in this order: kill old cold
// copies (the directory still maps to them), publish the new segments,
// unpublish the IMRS entries, reclaim. Readers
// that race the window between commit and publish still find the row:
// the IMRS entry is unpublished only after the segment is visible.
func (e *Engine) freezeEntries(rt *tableRT, prt *partRT, part rid.PartitionID, entries []*imrs.Entry) (int, int64, error) {
	packTxn := e.nextTxnID.Add(1)
	var lockedRIDs []rid.RID
	unlockAll := func() {
		for _, lr := range lockedRIDs {
			e.locks.Unlock(packTxn, lr)
		}
	}
	defer unlockAll()

	var sysRecs, imrsRecs []wal.Record
	var post []func(ts uint64)
	var segs []*colseg.Segment
	var killOld []rid.RID
	rows := 0
	var bytes int64

	w := colseg.NewWriter(rt.cat.ID, part, rt.cat.Schema, e.cfg.ColdForceRaw)
	// cut finishes the in-progress segment: self-validate the blob by
	// re-opening it, log it, and queue it for post-commit publish.
	cut := func() error {
		if w.Rows() == 0 {
			return nil
		}
		blob, err := w.Finish(nil)
		if err != nil {
			return err
		}
		seg, err := colseg.Open(blob)
		if err != nil {
			return err
		}
		sysRecs = append(sysRecs, wal.Record{
			Type: wal.RecSegFreeze, Table: rt.cat.ID, After: blob,
		})
		segs = append(segs, seg)
		w.Reset()
		return nil
	}

	for _, en := range entries {
		if en.Packed() {
			continue
		}
		// Conditional lock: skip rows in active use.
		if !e.locks.TryLock(packTxn, en.RID) {
			e.queues.Enqueue(en)
			continue
		}
		lockedRIDs = append(lockedRIDs, en.RID)
		if en.Packed() {
			continue
		}
		v := en.Visible(math.MaxUint64, 0)
		if v == nil {
			// Tombstoned: the delete's commit already retired it.
			continue
		}
		data := v.Data()
		en := en

		freeze := en.RID.IsVirtual() || en.Dirty()
		if freeze {
			if err := w.Add(en.RID, data); err != nil {
				return rows, bytes, err
			}
			if _, _, k, ok := e.cold.Lookup(en.RID); ok && k == 0 {
				sysRecs = append(sysRecs, wal.Record{
					Type: wal.RecSegKill, Table: rt.cat.ID, RID: en.RID,
				})
				killOld = append(killOld, en.RID)
			}
			// A dirty physical row leaves its stale pre-update heap image
			// in place, deliberately: the copy is shadowed by the live
			// cold entry on every read path (point reads and scans check
			// the cold directory first), and keeping the slot occupied is
			// what guarantees the RID stays unique. Freeing it here let
			// the heap hand the slot to an unrelated insert while the
			// cold copy was still live — two logical rows sharing one
			// physical RID, the new one unreachable behind the old one's
			// segment image. The slot is reclaimed when the frozen row is
			// deleted or un-frozen, both of which retire the cold copy in
			// the same transaction.
			imrsRecs = append(imrsRecs, wal.Record{
				Type: wal.RecIMRSDelete, Table: rt.cat.ID, RID: en.RID, Aux: uint8(en.Origin),
			})
			if w.Rows() >= e.cfg.ColdSegmentRows {
				if err := cut(); err != nil {
					return rows, bytes, err
				}
			}
		}
		// Rows leaving the IMRS lose their hash fast-path entries either
		// way (the B+tree entries stay: same RID before and after).
		e.dropHashEntries(rt, en, data)
		rows++
		bytes += int64(en.LiveBytes())
		post = append(post, func(ts uint64) {
			en.MarkPacked()
			e.rmap.Delete(en.RID, en)
			e.queues.Remove(en)
			e.gc.RetireEntry(en, ts)
		})
	}
	if err := cut(); err != nil {
		return rows, bytes, err
	}

	if rows == 0 {
		return 0, 0, nil
	}
	ts := e.clock.Tick()
	hasSys := len(sysRecs) > 0
	// Same pipeline and ordering as Txn.Commit and the legacy pack: the
	// IMRS half turns durable (Aux=1 marks it contingent on the syslogs
	// commit) before the syslogs RecCommit is appended.
	if len(imrsRecs) > 0 {
		aux := uint8(0)
		if hasSys {
			aux = 1
		}
		for i := range imrsRecs {
			imrsRecs[i].TxnID = packTxn
			if _, err := e.imrslog.Append(&imrsRecs[i]); err != nil {
				return 0, 0, err
			}
		}
		cr := wal.Record{Type: wal.RecIMRSCommit, TxnID: packTxn, CommitTS: ts, Aux: aux}
		lsn, err := e.imrslog.Append(&cr)
		if err != nil {
			return 0, 0, err
		}
		if hasSys {
			for i := range sysRecs {
				sysRecs[i].TxnID = packTxn
				if _, err := e.syslog.Append(&sysRecs[i]); err != nil {
					return 0, 0, err
				}
			}
		}
		if err := e.imrslog.WaitDurable(lsn); err != nil {
			return 0, 0, err
		}
	} else if hasSys {
		for i := range sysRecs {
			sysRecs[i].TxnID = packTxn
			if _, err := e.syslog.Append(&sysRecs[i]); err != nil {
				return 0, 0, err
			}
		}
	}
	if hasSys {
		cr := wal.Record{Type: wal.RecCommit, TxnID: packTxn, CommitTS: ts}
		lsn, err := e.syslog.Append(&cr)
		if err != nil {
			return 0, 0, err
		}
		if err := e.syslog.WaitDurable(lsn); err != nil {
			return 0, 0, err
		}
	}

	// Kill superseded cold copies BEFORE publishing: Kill targets the
	// directory's newest entry, which must still be the old copy.
	for _, r := range killOld {
		e.cold.Kill(r, ts)
	}
	for _, seg := range segs {
		seg.FreezeTS = ts
		e.cold.Publish(seg)
	}
	for _, fn := range post {
		fn(ts)
	}
	// Reclaim synchronously so the freed memory is visible to the pack
	// cycle's own utilization accounting (and to anyone driving Step).
	e.gc.Drain()
	return rows, bytes, nil
}
