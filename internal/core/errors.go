package core

import "errors"

// Engine error values.
var (
	// ErrDuplicateKey reports a unique-index violation.
	ErrDuplicateKey = errors.New("core: duplicate key")
	// ErrPKChange reports an update attempting to modify primary-key
	// columns (unsupported; delete + insert instead).
	ErrPKChange = errors.New("core: primary key columns cannot be updated")
	// ErrRetry reports that a row moved between stores too many times
	// during one operation; the caller should retry the statement.
	ErrRetry = errors.New("core: row relocated concurrently, retry")
	// ErrTxnDone reports use of a finished transaction.
	ErrTxnDone = errors.New("core: transaction already finished")
	// ErrRowTooLarge reports a row whose encoding exceeds the single-page
	// limit. The bound applies to both stores: an IMRS row larger than a
	// page could never be packed.
	ErrRowTooLarge = errors.New("core: row exceeds the single-page size limit")
	// ErrReadOnly reports a write rejected because the engine is in the
	// ReadOnly health state (a WAL is poisoned and no write could ever
	// become durable). Matched by errors.Is against the *ReadOnlyError
	// the write paths actually return.
	ErrReadOnly = errors.New("core: engine is read-only")
	// ErrEngineClosed reports use of an engine after Halt/Close.
	ErrEngineClosed = errors.New("core: engine closed")
)

// ReadOnlyError is the typed write rejection carrying the root cause
// that forced the engine read-only (typically wal.ErrPoisoned wrapping
// the failed flush). errors.Is(err, ErrReadOnly) matches it; the cause
// chain stays reachable through Unwrap.
type ReadOnlyError struct {
	Cause error
	// Recoverable distinguishes a shard parked ReadOnly by unresolved
	// in-doubt transactions (the state clears in place once the
	// coordinator's decision is learned — callers may retry with
	// backoff) from the sticky poisoned-WAL verdict, which only a
	// restart clears.
	Recoverable bool
}

// Error implements error.
func (e *ReadOnlyError) Error() string {
	if e.Cause == nil {
		return ErrReadOnly.Error()
	}
	return ErrReadOnly.Error() + ": " + e.Cause.Error()
}

// Unwrap exposes the root cause.
func (e *ReadOnlyError) Unwrap() error { return e.Cause }

// Is matches the ErrReadOnly sentinel.
func (e *ReadOnlyError) Is(target error) bool { return target == ErrReadOnly }
