package core

import "errors"

// Engine error values.
var (
	// ErrDuplicateKey reports a unique-index violation.
	ErrDuplicateKey = errors.New("core: duplicate key")
	// ErrPKChange reports an update attempting to modify primary-key
	// columns (unsupported; delete + insert instead).
	ErrPKChange = errors.New("core: primary key columns cannot be updated")
	// ErrRetry reports that a row moved between stores too many times
	// during one operation; the caller should retry the statement.
	ErrRetry = errors.New("core: row relocated concurrently, retry")
	// ErrTxnDone reports use of a finished transaction.
	ErrTxnDone = errors.New("core: transaction already finished")
	// ErrRowTooLarge reports a row whose encoding exceeds the single-page
	// limit. The bound applies to both stores: an IMRS row larger than a
	// page could never be packed.
	ErrRowTooLarge = errors.New("core: row exceeds the single-page size limit")
)
