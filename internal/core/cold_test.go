package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/row"
	"repro/internal/storage/colseg"
)

// coldConfig quiets the background packer so tests drive freezing
// explicitly, and keeps segments small so multi-segment paths run.
func coldConfig(c *Config) {
	c.PackInterval = time.Hour
	c.ILM.InitialTSF = 1
	c.ILM.PackCyclePct = 1.0
	c.ColdSegmentRows = 64
}

// freezeRows drives the packer until at least want rows have been
// frozen into cold segments (the engine must have a single-partition
// "items" table with want IMRS-resident rows).
func freezeRows(t *testing.T, e *Engine, want int) {
	t.Helper()
	for i := 0; i < 200; i++ {
		e.Clock().Tick()
	}
	waitQueueLen(t, e, want)
	e.Packer().SetForceAggressive(true)
	defer e.Packer().SetForceAggressive(false)
	base := e.cold.Stats().RowsFrozen
	for i := 0; i < 50 && e.cold.Stats().RowsFrozen-base < int64(want); i++ {
		e.Packer().Step()
	}
	if got := e.cold.Stats().RowsFrozen - base; got < int64(want) {
		t.Fatalf("froze %d rows, want >= %d", got, want)
	}
}

// scanSet collects a table scan into "id|name|qty" strings, sorted.
func scanSet(t *testing.T, tx *Txn) []string {
	t.Helper()
	var rows []string
	if err := tx.ScanTable("items", func(rw row.Row) bool {
		rows = append(rows, fmt.Sprintf("%d|%s|%d", rw[0].Int(), rw[1].Str(), rw[2].Int()))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(rows)
	return rows
}

// batchSet collects a vectorized scan into the same representation.
func batchSet(t *testing.T, tx *Txn, batchRows int) []string {
	t.Helper()
	var rows []string
	err := tx.ScanBatches("items", []string{"id", "name", "qty"}, batchRows, func(b *colseg.Batch) bool {
		for i := 0; i < b.Len(); i++ {
			rows = append(rows, fmt.Sprintf("%d|%s|%d",
				b.Cols[0].I64[i], string(b.Cols[1].Str[i]), b.Cols[2].I64[i]))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(rows)
	return rows
}

func equalSets(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d\ngot:  %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d = %q, want %q", label, i, got[i], want[i])
		}
	}
}

// TestColdFreezeAndRead: rows frozen into column segments stay fully
// readable through every read path — point reads, secondary-index
// lookups, row scans, and vectorized scans — and the compressed
// footprint of the (dictionary- and delta-friendly) data beats raw.
func TestColdFreezeAndRead(t *testing.T) {
	e := openEngine(t, coldConfig)
	createItems(t, e)

	const n = 300
	tx := e.Begin()
	for i := int64(1); i <= n; i++ {
		// Three distinct names (dictionary-friendly), sequential qty
		// (delta-friendly).
		if err := tx.Insert("items", itemRow(i, fmt.Sprintf("name-%d", i%3), i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	freezeRows(t, e, n)

	cs := e.Stats().ColdStore
	if cs.Segments == 0 || cs.RowsLive != n {
		t.Fatalf("cold stats: %+v, want %d live rows in >0 segments", cs, n)
	}
	if cs.CompressedBytes >= cs.RawBytes {
		t.Fatalf("no compression: %d compressed vs %d raw", cs.CompressedBytes, cs.RawBytes)
	}
	if e.Store().Rows() != 0 {
		t.Fatalf("IMRS still holds %d rows after freeze", e.Store().Rows())
	}

	tx = e.Begin()
	for i := int64(1); i <= n; i++ {
		rw, ok, err := tx.Get("items", pk(i))
		if err != nil || !ok {
			t.Fatalf("frozen row %d: %v %v", i, ok, err)
		}
		if rw[1].Str() != fmt.Sprintf("name-%d", i%3) || rw[2].Int() != i {
			t.Fatalf("frozen row %d corrupted: %v", i, rw)
		}
	}
	// Secondary index still resolves (RIDs were never repointed).
	rows, err := tx.LookupAll("items", "items_name", []row.Value{row.String("name-1")})
	if err != nil || len(rows) != n/3 {
		t.Fatalf("index lookup over frozen rows: %d rows, err %v", len(rows), err)
	}

	want := scanSet(t, tx)
	if len(want) != n {
		t.Fatalf("scan saw %d rows, want %d", len(want), n)
	}
	for _, br := range []int{1, 7, 64, 1024} {
		equalSets(t, fmt.Sprintf("batch=%d", br), batchSet(t, tx, br), want)
	}

	// Projection pushdown: only the requested column comes back.
	var qtySum int64
	if err := tx.ScanBatches("items", []string{"qty"}, 0, func(b *colseg.Batch) bool {
		if len(b.Cols) != 1 {
			t.Fatalf("projected batch has %d cols", len(b.Cols))
		}
		for i := 0; i < b.Len(); i++ {
			qtySum += b.Cols[0].I64[i]
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if qtySum != n*(n+1)/2 {
		t.Fatalf("projected qty sum = %d, want %d", qtySum, n*(n+1)/2)
	}
	mustCommit(t, tx)
}

// TestColdUnfreezeMigrate: the first dirtying update of a frozen row
// pulls it back into the IMRS; the killed segment copy stays visible to
// snapshots taken before the update committed.
func TestColdUnfreezeMigrate(t *testing.T) {
	e := openEngine(t, coldConfig)
	createItems(t, e)

	tx := e.Begin()
	for i := int64(1); i <= 100; i++ {
		if err := tx.Insert("items", itemRow(i, "w", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	freezeRows(t, e, 100)

	old := e.Begin() // snapshot before the un-freeze
	tx = e.Begin()
	ok, err := tx.Update("items", pk(7), func(r row.Row) (row.Row, error) {
		r[2] = row.Int64(-7)
		return r, nil
	})
	if err != nil || !ok {
		t.Fatalf("update frozen row: %v %v", ok, err)
	}
	mustCommit(t, tx)

	// Old snapshot still reads the killed segment copy.
	rw, ok, err := old.Get("items", pk(7))
	if err != nil || !ok || rw[2].Int() != 7 {
		t.Fatalf("old snapshot after unfreeze: %v %v %v", rw, ok, err)
	}
	oldRows := scanSet(t, old)
	if len(oldRows) != 100 || oldRows[sort.SearchStrings(oldRows, "7|")] != "7|w|7" {
		t.Fatalf("old snapshot scan wrong: %d rows", len(oldRows))
	}
	equalSets(t, "old snapshot batches", batchSet(t, old, 16), oldRows)
	mustCommit(t, old)

	// New snapshot reads the IMRS image, exactly once.
	tx = e.Begin()
	rw, ok, err = tx.Get("items", pk(7))
	if err != nil || !ok || rw[2].Int() != -7 {
		t.Fatalf("new snapshot after unfreeze: %v %v %v", rw, ok, err)
	}
	newRows := scanSet(t, tx)
	if len(newRows) != 100 {
		t.Fatalf("new snapshot scan saw %d rows", len(newRows))
	}
	equalSets(t, "new snapshot batches", batchSet(t, tx, 16), newRows)
	mustCommit(t, tx)

	cs := e.Stats().ColdStore
	if cs.Unfreezes != 1 || cs.Kills != 1 || cs.RowsLive != 99 {
		t.Fatalf("cold stats after unfreeze: %+v", cs)
	}
}

// TestColdUnfreezeToHeap: with migration disabled (table pinned out of
// memory) an update of a frozen row lands in the page store instead,
// repointing indexes as needed; reads and scans stay consistent.
func TestColdUnfreezeToHeap(t *testing.T) {
	e := openEngine(t, coldConfig)
	createItems(t, e)

	tx := e.Begin()
	for i := int64(1); i <= 100; i++ {
		if err := tx.Insert("items", itemRow(i, fmt.Sprintf("h%d", i%5), i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	freezeRows(t, e, 100)
	if err := e.PinTable("items", false); err != nil {
		t.Fatal(err)
	}

	tx = e.Begin()
	for _, id := range []int64{3, 50, 99} {
		ok, err := tx.Update("items", pk(id), func(r row.Row) (row.Row, error) {
			r[1] = row.String("moved")
			r[2] = row.Int64(-id)
			return r, nil
		})
		if err != nil || !ok {
			t.Fatalf("unfreeze-to-heap %d: %v %v", id, ok, err)
		}
	}
	mustCommit(t, tx)

	tx = e.Begin()
	for _, id := range []int64{3, 50, 99} {
		rw, ok, err := tx.Get("items", pk(id))
		if err != nil || !ok || rw[2].Int() != -id || rw[1].Str() != "moved" {
			t.Fatalf("heap-unfrozen row %d: %v %v %v", id, rw, ok, err)
		}
	}
	// Index repoint: the new name finds all three, the old name none of
	// them.
	moved, err := tx.LookupAll("items", "items_name", []row.Value{row.String("moved")})
	if err != nil || len(moved) != 3 {
		t.Fatalf("index after unfreeze-to-heap: %d rows, err %v", len(moved), err)
	}
	rows := scanSet(t, tx)
	if len(rows) != 100 {
		t.Fatalf("scan saw %d rows after heap unfreeze", len(rows))
	}
	equalSets(t, "batches after heap unfreeze", batchSet(t, tx, 32), rows)
	mustCommit(t, tx)

	if cs := e.Stats().ColdStore; cs.Unfreezes != 3 || cs.RowsLive != 97 {
		t.Fatalf("cold stats after heap unfreeze: %+v", cs)
	}
}

// TestColdDeleteFrozen: deleting a frozen row kills its segment copy.
// Deletes are read-committed (as for every page-store-resident row):
// the row disappears from old snapshots too, consistently across point
// reads (whose index entry is gone) and both scan paths.
func TestColdDeleteFrozen(t *testing.T) {
	e := openEngine(t, coldConfig)
	createItems(t, e)

	tx := e.Begin()
	for i := int64(1); i <= 80; i++ {
		if err := tx.Insert("items", itemRow(i, "d", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	freezeRows(t, e, 80)

	old := e.Begin()
	tx = e.Begin()
	ok, err := tx.Delete("items", pk(42))
	if err != nil || !ok {
		t.Fatalf("delete frozen row: %v %v", ok, err)
	}
	mustCommit(t, tx)

	// Read-committed: the delete is visible to the older snapshot too,
	// and point reads agree with both scan paths.
	if _, ok, err := old.Get("items", pk(42)); err != nil || ok {
		t.Fatalf("deleted frozen row still visible to old snapshot: %v %v", ok, err)
	}
	if got := scanSet(t, old); len(got) != 79 {
		t.Fatalf("old snapshot scan saw %d rows, want 79", len(got))
	}
	equalSets(t, "old snapshot batches", batchSet(t, old, 16), scanSet(t, old))
	mustCommit(t, old)

	tx = e.Begin()
	if _, ok, _ := tx.Get("items", pk(42)); ok {
		t.Fatal("deleted frozen row still visible")
	}
	if ok, err := tx.Delete("items", pk(42)); err != nil || ok {
		t.Fatalf("second delete: %v %v", ok, err)
	}
	if got := scanSet(t, tx); len(got) != 79 {
		t.Fatalf("scan saw %d rows, want 79", len(got))
	}
	equalSets(t, "batches after delete", batchSet(t, tx, 16), scanSet(t, tx))
	mustCommit(t, tx)
}

// TestColdCrashRecovery is the randomized freeze → mutate → crash →
// recover property test: a model map tracks the expected contents while
// rows are frozen, un-frozen by updates, deleted, and re-inserted; a
// crash (Halt without checkpoint) followed by recovery must reproduce
// the model exactly through both scan paths and point reads.
func TestColdCrashRecovery(t *testing.T) {
	for _, seed := range []int64{1, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			st := newSharedStorage()
			e, err := Open(st.config(coldConfig))
			if err != nil {
				t.Fatal(err)
			}
			createItems(t, e)
			rng := rand.New(rand.NewSource(seed))
			model := map[int64][2]int64{} // id -> {name variant, qty}

			insert := func(tx *Txn, id int64) {
				nv := rng.Int63n(4)
				if err := tx.Insert("items", itemRow(id, fmt.Sprintf("n%d", nv), id*10)); err != nil {
					t.Fatal(err)
				}
				model[id] = [2]int64{nv, id * 10}
			}
			tx := e.Begin()
			for i := int64(1); i <= 200; i++ {
				insert(tx, i)
			}
			mustCommit(t, tx)
			freezeRows(t, e, 200)

			nextID := int64(201)
			ids := func() []int64 {
				out := make([]int64, 0, len(model))
				for id := range model {
					out = append(out, id)
				}
				sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
				return out
			}
			for round := 0; round < 60; round++ {
				tx := e.Begin()
				for op := 0; op < 1+rng.Intn(3); op++ {
					live := ids()
					switch k := rng.Intn(10); {
					case k < 3 || len(live) == 0: // insert
						insert(tx, nextID)
						nextID++
					case k < 8: // update (un-freezes frozen victims)
						id := live[rng.Intn(len(live))]
						nv := rng.Int63n(4)
						if _, err := tx.Update("items", pk(id), func(r row.Row) (row.Row, error) {
							r[1] = row.String(fmt.Sprintf("n%d", nv))
							r[2] = row.Int64(r[2].Int() + 1)
							return r, nil
						}); err != nil {
							t.Fatal(err)
						}
						m := model[id]
						model[id] = [2]int64{nv, m[1] + 1}
					default: // delete
						id := live[rng.Intn(len(live))]
						if _, err := tx.Delete("items", pk(id)); err != nil {
							t.Fatal(err)
						}
						delete(model, id)
					}
				}
				mustCommit(t, tx)
				if round == 30 {
					// Mid-run freeze of whatever has cooled down again.
					for i := 0; i < 200; i++ {
						e.Clock().Tick()
					}
					e.Packer().SetForceAggressive(true)
					e.Packer().Step()
					e.Packer().SetForceAggressive(false)
				}
			}

			wantRows := func() []string {
				var out []string
				for id, m := range model {
					out = append(out, fmt.Sprintf("%d|n%d|%d", id, m[0], m[1]))
				}
				sort.Strings(out)
				return out
			}()

			check := func(e *Engine, label string) {
				tx := e.Begin()
				equalSets(t, label+" scan", scanSet(t, tx), wantRows)
				equalSets(t, label+" batches", batchSet(t, tx, 32), wantRows)
				for _, id := range ids() {
					m := model[id]
					rw, ok, err := tx.Get("items", pk(id))
					if err != nil || !ok {
						t.Fatalf("%s: row %d lost: %v %v", label, id, ok, err)
					}
					if rw[1].Str() != fmt.Sprintf("n%d", m[0]) || rw[2].Int() != m[1] {
						t.Fatalf("%s: row %d = %v, want n%d/%d", label, id, rw, m[0], m[1])
					}
				}
				mustCommit(t, tx)
			}
			check(e, "pre-crash")

			e.Halt() // crash: no checkpoint, no clean close
			e2, err := Open(st.config(coldConfig))
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer e2.Halt()
			check(e2, "post-recovery")

			// The recovered engine keeps working: un-freeze a recovered
			// frozen row and read it back.
			live := ids()
			victim := live[0]
			tx = e2.Begin()
			if _, err := tx.Update("items", pk(victim), func(r row.Row) (row.Row, error) {
				r[2] = row.Int64(-1)
				return r, nil
			}); err != nil {
				t.Fatalf("post-recovery update: %v", err)
			}
			mustCommit(t, tx)
			tx = e2.Begin()
			rw, ok, err := tx.Get("items", pk(victim))
			if err != nil || !ok || rw[2].Int() != -1 {
				t.Fatalf("post-recovery unfreeze read: %v %v %v", rw, ok, err)
			}
			mustCommit(t, tx)
		})
	}
}

// TestColdStoreDisabled: the baseline knob reverts freezing to the
// legacy page path — no segments appear, rows stay readable.
func TestColdStoreDisabled(t *testing.T) {
	e := openEngine(t, func(c *Config) {
		coldConfig(c)
		c.DisableColdStore = true
	})
	createItems(t, e)

	tx := e.Begin()
	for i := int64(1); i <= 100; i++ {
		if err := tx.Insert("items", itemRow(i, "x", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	for i := 0; i < 200; i++ {
		e.Clock().Tick()
	}
	waitQueueLen(t, e, 100)
	e.Packer().SetForceAggressive(true)
	e.Packer().Step()
	e.Packer().SetForceAggressive(false)
	if e.Packer().RowsPacked.Load() == 0 {
		t.Fatal("nothing packed")
	}
	if cs := e.Stats().ColdStore; cs.SegmentsWritten != 0 {
		t.Fatalf("segments written with cold store disabled: %+v", cs)
	}
	tx = e.Begin()
	if got := scanSet(t, tx); len(got) != 100 {
		t.Fatalf("scan saw %d rows", len(got))
	}
	equalSets(t, "disabled batches", batchSet(t, tx, 16), scanSet(t, tx))
	mustCommit(t, tx)
}

// TestScanBatchesAllocBudget: after warm-up, a vectorized scan over
// frozen segments must not allocate per batch — the scratch (batch
// vectors, selection vector, arena) is pooled, and segment strings
// alias the blob. The budget covers the per-CALL fixed costs only; it
// would blow up ~8x if any per-batch or per-row allocation crept in
// (1024 rows / 128-row batches below).
const scanBatchesAllocBudget = 8

func TestScanBatchesAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; budget is meaningless")
	}
	e := openEngine(t, func(c *Config) {
		coldConfig(c)
		c.ColdSegmentRows = 256
		c.CheckpointEvery = 0
		c.DisableGroupCommit = true
		c.GCWorkers = 1
	})
	createItems(t, e)

	const n = 1024
	tx := e.Begin()
	for i := int64(1); i <= n; i++ {
		if err := tx.Insert("items", itemRow(i, fmt.Sprintf("name-%d", i%7), i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)
	freezeRows(t, e, n)

	cols := []string{"id", "qty"}
	scan := func(tx *Txn) int64 {
		var sum int64
		var rows int
		if err := tx.ScanBatches("items", cols, 128, func(b *colseg.Batch) bool {
			rows += b.Len()
			for i := 0; i < b.Len(); i++ {
				sum += b.Cols[1].I64[i]
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if rows != n {
			t.Fatalf("scanned %d rows, want %d", rows, n)
		}
		return sum
	}

	rtx := e.Begin()
	defer rtx.Abort()
	for i := 0; i < 10; i++ { // warm the scratch pool
		scan(rtx)
	}
	avg := testing.AllocsPerRun(100, func() {
		if got := scan(rtx); got != int64(n)*(n+1)/2 {
			t.Fatalf("bad sum %d", got)
		}
	})
	t.Logf("vectorized scan: %.1f allocs per 1024-row scan (budget %d)", avg, scanBatchesAllocBudget)
	if avg > scanBatchesAllocBudget {
		t.Fatalf("ScanBatches allocates %.1f per scan, budget %d — per-batch allocation crept in",
			avg, scanBatchesAllocBudget)
	}
}

// TestColdFrozenSlotNotReused: freezing a dirty physical row must keep
// its heap slot occupied while the cold copy is live. The freeze used
// to delete the stale heap copy, freeing the slot for reuse — a later
// page-store insert could then land on the same RID, leaving two
// logical rows behind one RID: the index found the new row's RID, the
// read resolved it through the live cold entry to the frozen row's
// image, and the new row became unreachable (point reads ended in
// ErrRetry, scans dropped it).
func TestColdFrozenSlotNotReused(t *testing.T) {
	st := newSharedStorage()
	e, err := Open(st.config(coldConfig))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)

	// Rows born in the page store (table pinned out of the IMRS).
	if err := e.PinTable("items", false); err != nil {
		t.Fatal(err)
	}
	const frozen = 40
	tx := e.Begin()
	for i := int64(1); i <= frozen; i++ {
		if err := tx.Insert("items", itemRow(i, "cold", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	// Updates migrate them into the IMRS as dirty entries that keep
	// their physical RIDs; the freeze then moves those RIDs to the cold
	// store. (If migration didn't trigger, freezeRows fails below — the
	// setup is self-checking.)
	if err := e.UnpinTable("items"); err != nil {
		t.Fatal(err)
	}
	tx = e.Begin()
	for i := int64(1); i <= frozen; i++ {
		ok, err := tx.Update("items", pk(i), func(r row.Row) (row.Row, error) {
			r[2] = row.Int64(i + 1000)
			return r, nil
		})
		if err != nil || !ok {
			t.Fatalf("migrate %d: %v %v", i, ok, err)
		}
	}
	mustCommit(t, tx)
	freezeRows(t, e, frozen)

	// A burst of new page-store inserts. If the freeze freed the heap
	// slots, these reuse them and collide with the live cold copies.
	if err := e.PinTable("items", false); err != nil {
		t.Fatal(err)
	}
	const fresh = 120
	tx = e.Begin()
	for i := int64(1001); i <= 1000+fresh; i++ {
		if err := tx.Insert("items", itemRow(i, "new", i)); err != nil {
			t.Fatal(err)
		}
	}
	mustCommit(t, tx)

	check := func(e *Engine, label string) {
		tx := e.Begin()
		for i := int64(1); i <= frozen; i++ {
			rw, ok, err := tx.Get("items", pk(i))
			if err != nil || !ok || rw[2].Int() != i+1000 {
				t.Fatalf("%s: frozen row %d: %v %v %v", label, i, rw, ok, err)
			}
		}
		for i := int64(1001); i <= 1000+fresh; i++ {
			rw, ok, err := tx.Get("items", pk(i))
			if err != nil || !ok || rw[2].Int() != i {
				t.Fatalf("%s: new row %d: %v %v %v", label, i, rw, ok, err)
			}
		}
		if got := scanSet(t, tx); len(got) != frozen+fresh {
			t.Fatalf("%s: scan saw %d rows, want %d", label, len(got), frozen+fresh)
		}
		equalSets(t, label+" batches", batchSet(t, tx, 32), scanSet(t, tx))
		mustCommit(t, tx)
	}
	check(e, "live")

	// Crash-recover: replay must reproduce the same pinned-slot state.
	e.Halt()
	e2, err := Open(st.config(coldConfig))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer e2.Halt()
	check(e2, "post-recovery")
}
