// Package core implements the BTrim engine: the hybrid IMRS/page-store
// transaction machinery, the dual write-ahead logs, ILM, Pack, and
// recovery.
//
// # Health states
//
// The engine runs a health state machine (see health.go):
//
//	Healthy → Degraded → ReadOnly → Halted
//
// Healthy and Degraded are reversible: degradation signals (checkpoint
// failure streaks, IMRS cache pressure, device-fault retry exhaustion,
// pack-relocation error streaks) route new rows to the page store and
// force aggressive packing, and clear when the signal recovers.
// ReadOnly is entered when a WAL is poisoned — the durable log and the
// in-memory state can no longer be reconciled — and is sticky until the
// process restarts and recovers from the logs. A read-only engine keeps
// serving snapshot reads; every write returns an error matching
// ErrReadOnly whose *ReadOnlyError wrapper carries the root cause.
// Halted is terminal.
//
// # Shutdown contract
//
// Two shutdown paths exist, and they promise different things:
//
//   - Close is the clean path: it stops the background loops, takes a
//     final checkpoint, flushes and closes both logs, and closes the
//     devices the engine owns. Shutdown is best-effort and always runs
//     to completion — a failing step never prevents later resources
//     from being released — and the returned error aggregates every
//     failure via errors.Join, so errors.Is/errors.As see each one.
//     Closing a ReadOnly engine skips the final checkpoint (it cannot
//     succeed against a poisoned log) and reports the sticky root cause:
//     errors.Is(err, ErrReadOnly) and errors.Is(err, wal.ErrPoisoned)
//     both hold. A nil return therefore really means "everything the
//     engine promised durable is on stable storage".
//
//   - Halt is the crash-exact path (tests, fail-stop simulation): no
//     final flush or checkpoint runs, queued committers get
//     wal.ErrHalted and roll back, and the durable state is exactly
//     what a power cut at that instant would leave. Halt returns nil on
//     a healthy engine; on a ReadOnly engine it returns the sticky
//     cause as a *ReadOnlyError so operators tearing an engine down
//     still learn it had already frozen writes.
//
// Both are idempotent; the second call returns nil. After either, the
// engine is Halted and every transaction entry point fails.
package core
