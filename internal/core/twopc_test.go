package core

import (
	"errors"
	"fmt"
	"testing"
)

// prepareRows begins a transaction, writes rows [from, to], and runs
// Prepare with the given global id / coordinator shard.
func prepareRows(t *testing.T, e *Engine, gid uint64, coord uint32, from, to int64) *Txn {
	t.Helper()
	tx := e.Begin()
	for i := from; i <= to; i++ {
		if err := tx.Insert("items", itemRow(i, fmt.Sprintf("p%d", i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Prepare(gid, coord); err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestPrepareCommitPublishes(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)

	tx := prepareRows(t, e, 42, 0, 1, 10)
	if err := e.LogDecision(42, true); err != nil {
		t.Fatal(err)
	}
	if err := tx.CommitPrepared(); err != nil {
		t.Fatal(err)
	}

	rd := e.Begin()
	defer rd.Abort()
	for i := int64(1); i <= 10; i++ {
		if _, ok, err := rd.Get("items", pk(i)); err != nil || !ok {
			t.Fatalf("row %d after prepared commit: ok=%v err=%v", i, ok, err)
		}
	}
	s := e.Stats().TwoPC
	if s.Prepares != 1 || s.PreparedCommits != 1 || s.Decisions != 1 {
		t.Fatalf("twopc counters = %+v", s)
	}
}

func TestAbortPreparedRollsBack(t *testing.T) {
	e := openEngine(t, nil)
	createItems(t, e)

	tx := prepareRows(t, e, 7, 0, 1, 5)
	tx.AbortPrepared()

	rd := e.Begin()
	defer rd.Abort()
	for i := int64(1); i <= 5; i++ {
		if _, ok, _ := rd.Get("items", pk(i)); ok {
			t.Fatalf("row %d visible after AbortPrepared", i)
		}
	}
	if s := e.Stats().TwoPC; s.PreparedAborts != 1 {
		t.Fatalf("twopc counters = %+v", s)
	}
}

// inDoubtCrash leaves storage holding a prepared-but-undecided
// transaction: rows 1..n prepared under the given gid/coord, then a
// crash-halt before any decision.
func inDoubtCrash(t *testing.T, st *sharedStorage, gid uint64, coord uint32, n int64) {
	t.Helper()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)
	prepareRows(t, e, gid, coord, 1, n)
	if err := e.Halt(); err != nil {
		t.Fatal(err)
	}
}

func TestInDoubtResolvedCommit(t *testing.T) {
	st := newSharedStorage()
	inDoubtCrash(t, st, 42, 3, 10)

	var gotGID uint64
	var gotCoord uint32
	e2, err := Open(st.config(func(c *Config) {
		c.TwoPCResolver = func(gid uint64, coord uint32) TwoPCOutcome {
			gotGID, gotCoord = gid, coord
			return TwoPCCommit
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if gotGID != 42 || gotCoord != 3 {
		t.Fatalf("resolver consulted with gid=%d coord=%d, want 42/3", gotGID, gotCoord)
	}
	rd := e2.Begin()
	defer rd.Abort()
	for i := int64(1); i <= 10; i++ {
		if _, ok, err := rd.Get("items", pk(i)); err != nil || !ok {
			t.Fatalf("row %d after in-doubt commit resolution: ok=%v err=%v", i, ok, err)
		}
	}
	rs := e2.Stats().Recovery
	if rs.InDoubt != 1 || rs.InDoubtCommitted != 1 || rs.InDoubtAborted != 0 || rs.InDoubtUnresolved != 0 {
		t.Fatalf("recovery in-doubt counters = %+v", rs)
	}
	if got := e2.HealthState(); got != StateHealthy {
		t.Fatalf("health after resolved recovery = %v", got)
	}
	// The conditional phase ran.
	found := false
	for _, p := range rs.Phases {
		if p.Name == PhaseInDoubt {
			found = true
		}
	}
	if !found {
		t.Fatalf("phase %q missing from %+v", PhaseInDoubt, rs.Phases)
	}
}

func TestInDoubtResolvedAbort(t *testing.T) {
	st := newSharedStorage()
	inDoubtCrash(t, st, 43, 0, 8)

	e2, err := Open(st.config(func(c *Config) {
		c.TwoPCResolver = func(gid uint64, coord uint32) TwoPCOutcome { return TwoPCAbort }
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rd := e2.Begin()
	defer rd.Abort()
	for i := int64(1); i <= 8; i++ {
		if _, ok, _ := rd.Get("items", pk(i)); ok {
			t.Fatalf("row %d visible after in-doubt abort resolution", i)
		}
	}
	rs := e2.Stats().Recovery
	if rs.InDoubt != 1 || rs.InDoubtAborted != 1 {
		t.Fatalf("recovery in-doubt counters = %+v", rs)
	}
	if got := e2.HealthState(); got != StateHealthy {
		t.Fatalf("health after resolved recovery = %v", got)
	}
}

func TestInDoubtUnresolvedParksReadOnly(t *testing.T) {
	st := newSharedStorage()
	inDoubtCrash(t, st, 44, 9, 4)

	// No resolver configured: the in-doubt transaction cannot be
	// settled. Recovery treats it as aborted but parks the engine
	// ReadOnly so the guess is never compounded by new writes.
	e2, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Halt()
	if got := e2.HealthState(); got != StateReadOnly {
		t.Fatalf("health = %v, want read-only", got)
	}
	rs := e2.Stats().Recovery
	if rs.InDoubt != 1 || rs.InDoubtUnresolved != 1 {
		t.Fatalf("recovery in-doubt counters = %+v", rs)
	}
	// Writes rejected, reads served.
	tx := e2.Begin()
	err = tx.Insert("items", itemRow(99, "x", 1))
	tx.Abort()
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("insert on parked engine: %v, want ErrReadOnly", err)
	}
	rd := e2.Begin()
	defer rd.Abort()
	if _, ok, err := rd.Get("items", pk(1)); ok || err != nil {
		t.Fatalf("in-doubt row treated as aborted: ok=%v err=%v", ok, err)
	}
}

func TestLocalOutcomeBeatsResolver(t *testing.T) {
	// A prepared transaction that finished locally (CommitPrepared or
	// AbortPrepared) must never reach the resolver on recovery.
	st := newSharedStorage()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)
	txc := prepareRows(t, e, 50, 0, 1, 3)
	if err := e.LogDecision(50, true); err != nil {
		t.Fatal(err)
	}
	if err := txc.CommitPrepared(); err != nil {
		t.Fatal(err)
	}
	txa := prepareRows(t, e, 51, 0, 11, 13)
	txa.AbortPrepared()
	// The abort marker is an unflushed best-effort append; checkpoint to
	// make it durable — only then is the local outcome visible to the
	// next recovery (otherwise presumed abort resolves it, equally
	// correctly, through the resolver).
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Halt(); err != nil {
		t.Fatal(err)
	}

	consulted := false
	e2, err := Open(st.config(func(c *Config) {
		c.TwoPCResolver = func(gid uint64, coord uint32) TwoPCOutcome {
			consulted = true
			return TwoPCUnknown
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if consulted {
		t.Fatal("resolver consulted for transactions with local outcomes")
	}
	if rs := e2.Stats().Recovery; rs.InDoubt != 0 {
		t.Fatalf("in-doubt = %d, want 0", rs.InDoubt)
	}
	rd := e2.Begin()
	defer rd.Abort()
	for i := int64(1); i <= 3; i++ {
		if _, ok, err := rd.Get("items", pk(i)); err != nil || !ok {
			t.Fatalf("committed row %d lost: ok=%v err=%v", i, ok, err)
		}
	}
	for i := int64(11); i <= 13; i++ {
		if _, ok, _ := rd.Get("items", pk(i)); ok {
			t.Fatalf("aborted row %d resurrected", i)
		}
	}
}

func TestInDoubtPageStoreRows(t *testing.T) {
	// Same resolution path, but through the page store (syslogs redo)
	// instead of the IMRS replay: pin the table out of memory so the
	// prepared writes are heap records gated on the winner set.
	st := newSharedStorage()
	e, err := Open(st.config(nil))
	if err != nil {
		t.Fatal(err)
	}
	createItems(t, e)
	if err := e.PinTable("items", false); err != nil {
		t.Fatal(err)
	}
	prepareRows(t, e, 60, 1, 1, 6)
	if err := e.Halt(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(st.config(func(c *Config) {
		c.TwoPCResolver = func(gid uint64, coord uint32) TwoPCOutcome { return TwoPCCommit }
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rd := e2.Begin()
	defer rd.Abort()
	for i := int64(1); i <= 6; i++ {
		if _, ok, err := rd.Get("items", pk(i)); err != nil || !ok {
			t.Fatalf("page-store row %d after in-doubt commit: ok=%v err=%v", i, ok, err)
		}
	}
}
