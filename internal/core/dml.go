package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/ilm"
	"repro/internal/imrs"
	"repro/internal/index/btree"
	"repro/internal/rid"
	"repro/internal/row"
	"repro/internal/storage/page"
	"repro/internal/wal"
)

// opMark snapshots the txn's mutation buffers so a failed statement can
// unwind without aborting the whole transaction.
type opMark struct {
	undo, sys, imrs, staged, atCommit, newEntries int
}

func (t *Txn) mark() opMark {
	return opMark{
		undo: len(t.undo), sys: len(t.sysRecs), imrs: len(t.imrsRecs),
		staged: len(t.staged), atCommit: len(t.atCommit), newEntries: len(t.newEntries),
	}
}

func (t *Txn) unwind(m opMark) {
	for i := len(t.undo) - 1; i >= m.undo; i-- {
		t.undo[i]()
	}
	t.undo = t.undo[:m.undo]
	t.sysRecs = t.sysRecs[:m.sys]
	t.imrsRecs = t.imrsRecs[:m.imrs]
	t.staged = t.staged[:m.staged]
	t.atCommit = t.atCommit[:m.atCommit]
	t.newEntries = t.newEntries[:m.newEntries]
}

// maxRowBytes bounds encoded rows so that every row — wherever it
// currently lives — fits a page-store slot including the heap record
// header (1 flag byte, or 9 for a moved record).
const maxRowBytes = page.MaxRecordSize - 9

// ridSuffix makes non-unique index keys unique per row.
func ridSuffix(k row.Key, r rid.RID) row.Key {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(r))
	return append(k, b[:]...)
}

// indexKey builds the B-tree key for row r under index ix.
func indexKey(ix *indexRT, rw row.Row, r rid.RID) (row.Key, error) {
	k, err := row.KeyOf(rw, ix.def.ColOrds)
	if err != nil {
		return nil, err
	}
	if !ix.def.Unique {
		k = ridSuffix(k, r)
	}
	return k, nil
}

func (e *Engine) decode(rt *tableRT, data []byte) (row.Row, error) {
	return row.Decode(rt.cat.Schema, data)
}

// pkOf recomputes the primary-key key of a decoded row.
func pkOf(rt *tableRT, rw row.Row) (row.Key, error) {
	return row.KeyOf(rw, rt.cat.PKOrds)
}

// Insert adds a row. The storage decision follows Section IV: inserts go
// to the IMRS when the partition is insert-enabled and the cache accepts
// new rows; otherwise (or on cache pressure) to the page store.
func (t *Txn) Insert(table string, rw row.Row) error {
	if t.done {
		return ErrTxnDone
	}
	if err := t.e.health.writable(); err != nil {
		return err
	}
	rt, err := t.e.table(table)
	if err != nil {
		return err
	}
	if err := rt.cat.Schema.Validate(rw); err != nil {
		return err
	}
	cp, err := rt.cat.PartitionFor(rw)
	if err != nil {
		return err
	}
	prt := t.e.partByID(cp.ID)
	encSize := row.EncodedSize(rw)
	if encSize > maxRowBytes {
		return ErrRowTooLarge
	}

	// Pre-check unique indexes (the insert below re-verifies atomically).
	for _, ix := range rt.indexes {
		if !ix.def.Unique {
			continue
		}
		k, err := indexKey(ix, rw, rid.Zero)
		if err != nil {
			return err
		}
		if _, found, err := ix.tree.Search(k); err != nil {
			return err
		} else if found {
			return ErrDuplicateKey
		}
	}

	if prt.ilm.Enabled(ilm.OpInsert) && t.e.packer.AcceptNewRows() && t.e.imrsAdmission() {
		err := t.insertIMRS(rt, prt, rw, encSize)
		if err != imrs.ErrCacheFull {
			return err
		}
		// Cache pressure: fall back to the page store.
	}
	return t.insertPage(rt, prt, rw, encSize)
}

// newEntry creates an IMRS entry holding rw's encoding. The default
// path encodes straight into the entry's fragment (one allocation, no
// intermediate buffer); legacy mode keeps the old
// encode-then-copy-into-Alloc shape for benchmark baselines. rw must
// already be schema-validated.
func (t *Txn) newEntry(r0 rid.RID, part rid.PartitionID, origin imrs.Origin, rw row.Row, encSize int) (*imrs.Entry, error) {
	if t.e.legacyAlloc {
		enc := row.AppendEncoded(rw, nil)
		return t.e.store.CreateEntry(r0, part, origin, enc, t.id)
	}
	return t.e.store.CreateEntryFunc(r0, part, origin, encSize, func(dst []byte) []byte {
		return row.AppendEncoded(rw, dst)
	}, t.id)
}

func (t *Txn) insertIMRS(rt *tableRT, prt *partRT, rw row.Row, encSize int) error {
	m := t.mark()
	r0 := prt.cat.NextVirtualRID()
	if err := t.lock(r0); err != nil {
		return err
	}
	en, err := t.newEntry(r0, prt.cat.ID, imrs.OriginInserted, rw, encSize)
	if err != nil {
		return err // ErrCacheFull bubbles to the caller's fallback
	}
	en.MarkDirty()
	v := en.Head()
	t.e.rmap.Put(r0, en)
	t.undo = append(t.undo, func() {
		if !t.e.store.AbortVersion(en, v) {
			en.MarkPacked()
			t.e.rmap.Delete(r0, en)
		}
	})
	if err := t.insertIndexEntries(rt, rw, r0, en); err != nil {
		t.unwind(m)
		return err
	}
	// After references the fragment image directly: the wal layer copies
	// the record into its pending buffer at Append time (during Commit,
	// while the uncommitted version still pins the fragment), so no
	// separate log copy of the row is needed.
	t.imrsRecs = append(t.imrsRecs, wal.Record{
		Type: wal.RecIMRSInsert, Table: rt.cat.ID, RID: r0,
		Aux: uint8(imrs.OriginInserted), After: v.Data(),
	})
	t.staged = append(t.staged, v)
	t.newEntries = append(t.newEntries, en)
	prt.ilm.IMRSInserts.Inc()
	prt.ilm.NewRows.Inc()
	return nil
}

func (t *Txn) insertPage(rt *tableRT, prt *partRT, rw row.Row, encSize int) error {
	m := t.mark()
	enc := row.AppendEncoded(rw, t.encBuf(encSize))
	r0, err := prt.heap.Insert(enc)
	if err != nil {
		return err
	}
	if err := t.lock(r0); err != nil {
		_ = prt.heap.Delete(r0)
		return err
	}
	t.undo = append(t.undo, func() { _ = prt.heap.Delete(r0) })
	if err := t.insertIndexEntries(rt, rw, r0, nil); err != nil {
		t.unwind(m)
		return err
	}
	t.sysRecs = append(t.sysRecs, wal.Record{
		Type: wal.RecHeapInsert, Table: rt.cat.ID, RID: r0, After: enc,
	})
	prt.ilm.PageOps.Inc()
	return nil
}

// insertIndexEntries adds the row to every index; en is non-nil for
// IMRS-resident rows (hash fast path entries).
func (t *Txn) insertIndexEntries(rt *tableRT, rw row.Row, r0 rid.RID, en *imrs.Entry) error {
	for _, ix := range rt.indexes {
		ix := ix
		k, err := indexKey(ix, rw, r0)
		if err != nil {
			return err
		}
		if err := ix.tree.Insert(k, r0); err != nil {
			if errors.Is(err, btree.ErrDuplicate) {
				return ErrDuplicateKey
			}
			return err
		}
		t.undo = append(t.undo, func() { _, _, _ = ix.tree.Delete(k) })
		if ix.hash != nil && en != nil {
			ix.hash.Put(k, en)
			t.undo = append(t.undo, func() { ix.hash.Delete(k, en) })
		}
	}
	return nil
}

// Get returns the row with the given primary key, or found=false. A hit
// on an IMRS-resident version counts as an IMRS select; a page-store
// read may trigger the Section IV caching path (unique-index access
// brings the row into the IMRS in anticipation of re-access).
func (t *Txn) Get(table string, pk []row.Value) (row.Row, bool, error) {
	if t.done {
		return nil, false, ErrTxnDone
	}
	rt, err := t.e.table(table)
	if err != nil {
		return nil, false, err
	}
	key := t.pkKey(pk)
	pkIx := rt.indexes[0]

	// Hash fast path: IMRS-resident rows only.
	if pkIx.hash != nil {
		if en := pkIx.hash.Get(key); en != nil {
			if v := en.Visible(t.snap, t.id); v != nil {
				prt := t.e.partByID(en.Part)
				en.Touch(t.e.clock.Now())
				prt.ilm.IMRSSelects.Inc()
				rw, err := t.e.decode(rt, v.Data())
				return rw, err == nil, err
			}
		}
	}

	for attempt := 0; attempt < 3; attempt++ {
		r0, found, err := pkIx.tree.Search(key)
		if err != nil {
			return nil, false, err
		}
		if !found {
			return nil, false, nil
		}
		rw, ok, retry, err := t.readRowAt(rt, r0, key, true)
		if err != nil {
			return nil, false, err
		}
		if !retry {
			return rw, ok, nil
		}
	}
	return nil, false, ErrRetry
}

// readRowAt resolves a RID obtained from an index to a row image,
// transparently checking the RID map first (paper Section II). retry
// reports that the row moved between stores and the index lookup should
// be repeated. pointAccess enables the ILM caching decision.
func (t *Txn) readRowAt(rt *tableRT, r0 rid.RID, probeKey row.Key, pointAccess bool) (rw row.Row, ok, retry bool, err error) {
	en := t.e.rmap.Get(r0)
	if en != nil {
		if v := en.Visible(t.snap, t.id); v != nil {
			prt := t.e.partByID(en.Part)
			en.Touch(t.e.clock.Now())
			prt.ilm.IMRSSelects.Inc()
			rw, err := t.e.decode(rt, v.Data())
			if err != nil {
				return nil, false, false, err
			}
			if probeKey != nil {
				got, err := pkOf(rt, rw)
				if err != nil {
					return nil, false, false, err
				}
				if !bytes.Equal(got, probeKey) {
					return nil, false, true, nil // index raced a key change
				}
			}
			return rw, true, false, nil
		}
		if r0.IsVirtual() {
			if _, _, k, cold := t.e.cold.Lookup(r0); !cold || (k != 0 && k <= t.snap) {
				// IMRS-only row not visible (uncommitted insert or deleted).
				return nil, false, false, nil
			}
			// Fall through: the invisible entry is an un-freeze this
			// snapshot predates (or an uncommitted migration); the live or
			// later-killed segment copy below holds our committed image.
		}
		// Physical RID whose IMRS version is invisible to this snapshot:
		// the page store still holds the pre-migration committed image.
	}
	// Cold-store resolution: serve the segment copy when it is live, or
	// when this snapshot predates its kill AND the RID map still has an
	// entry for the row — an un-freeze-by-update, whose newer image is
	// snapshot-versioned in the IMRS. A kill without an entry (delete,
	// un-freeze to the heap) is read-committed, exactly like page-store
	// rows: the index/heap already reflect it for every snapshot.
	if seg, idx, k, ok := t.e.cold.Lookup(r0); ok && (k == 0 || (k > t.snap && en != nil)) {
		prt := t.e.partByID(r0.Partition())
		if prt == nil {
			return nil, false, false, fmt.Errorf("core: unknown partition in %v", r0)
		}
		enc, err := seg.EncodeRowAt(idx, nil)
		if err != nil {
			return nil, false, false, err
		}
		rw, err = t.e.decode(rt, enc)
		if err != nil {
			return nil, false, false, err
		}
		if probeKey != nil {
			got, err := pkOf(rt, rw)
			if err != nil {
				return nil, false, false, err
			}
			if !bytes.Equal(got, probeKey) {
				return nil, false, true, nil
			}
		}
		prt.ilm.PageOps.Inc()
		if pointAccess && k == 0 {
			t.maybeCache(rt, prt, r0, enc, true)
		}
		return rw, true, false, nil
	} else if ok && r0.IsVirtual() {
		// Killed cold copy, no IMRS entry: the row is gone for this
		// snapshot (deleted, or un-frozen to a fresh heap RID whose
		// index repoint committed before our snapshot began).
		return nil, false, false, nil
	}
	if r0.IsVirtual() {
		// Entry gone: the row was packed after the index lookup; the
		// index now points at its page-store RID.
		return nil, false, true, nil
	}
	prt := t.e.partByID(r0.Partition())
	if prt == nil {
		return nil, false, false, fmt.Errorf("core: unknown partition in %v", r0)
	}
	data, found, err := t.lockedPageFetch(prt, r0)
	if err != nil {
		return nil, false, false, err
	}
	if !found {
		return nil, false, false, nil
	}
	rw, err = t.e.decode(rt, data)
	if err != nil {
		return nil, false, false, err
	}
	if probeKey != nil {
		got, err := pkOf(rt, rw)
		if err != nil {
			return nil, false, false, err
		}
		if !bytes.Equal(got, probeKey) {
			return nil, false, true, nil
		}
	}
	prt.ilm.PageOps.Inc()
	prt.ilm.PageReuseOps.Inc()
	if pointAccess {
		t.maybeCache(rt, prt, r0, data, false)
	}
	return rw, true, false, nil
}

// lockedPageFetch reads a page-store row under its row lock (read
// committed): a write in flight holds the lock, so the read waits for
// the outcome. The lock is released immediately unless this transaction
// already holds it.
func (t *Txn) lockedPageFetch(prt *partRT, r0 rid.RID) (data []byte, found bool, err error) {
	_, held := t.locks[r0]
	if !held {
		if err := t.e.locks.Lock(t.id, r0); err != nil {
			return nil, false, err
		}
		defer t.e.locks.Unlock(t.id, r0)
	}
	data, err = prt.heap.Fetch(r0)
	if err != nil {
		// Dead slot or missing page: the row does not exist (deleted).
		return nil, false, nil
	}
	return data, true, nil
}

// maybeCache implements the Section IV "select caches the row" path:
// a point access to a page-store row copies it into the IMRS as a clean
// cached row, in anticipation of re-access. Conditional lock only; the
// hot path never blocks for caching.
func (t *Txn) maybeCache(rt *tableRT, prt *partRT, r0 rid.RID, data []byte, fromCold bool) {
	if !prt.ilm.Enabled(ilm.OpCache) || !t.e.packer.AcceptNewRows() || !t.e.imrsAdmission() {
		return
	}
	if !t.tryLock(r0) {
		return
	}
	if t.e.rmap.Get(r0) != nil {
		return // raced another cacher
	}
	if fromCold {
		// data was read from a cold segment without the row lock; under
		// the lock, re-verify the segment copy is still the authoritative
		// image (an un-freeze or delete would have killed it).
		if _, _, k, ok := t.e.cold.Lookup(r0); !ok || k != 0 {
			return
		}
	}
	en, err := t.e.store.CreateEntry(r0, prt.cat.ID, imrs.OriginCached, data, t.id)
	if err != nil {
		return // cache full: skip silently
	}
	if !t.e.rmap.Put(r0, en) {
		t.e.store.AbortVersion(en, en.Head())
		return
	}
	// Cached rows hold already-committed data: commit the version
	// immediately at the current timestamp. No logging — a cached row is
	// a clean copy and simply vanishes on crash.
	now := t.e.clock.Now()
	t.e.store.Commit(en.Head(), now)
	en.Touch(now)
	rw, err := t.e.decode(rt, data)
	if err == nil {
		for _, ix := range rt.indexes {
			if ix.hash == nil {
				continue
			}
			if k, err := indexKey(ix, rw, r0); err == nil {
				ix.hash.Put(k, en)
			}
		}
	}
	t.e.gc.NewRow(en)
	prt.ilm.NewRows.Inc()
	prt.ilm.Cachings.Inc()
}

// locateForWrite finds the row for pk, locks it for the transaction, and
// re-resolves its location under the lock.
func (t *Txn) locateForWrite(rt *tableRT, key row.Key) (r0 rid.RID, en *imrs.Entry, found bool, err error) {
	pkIx := rt.indexes[0]
	for attempt := 0; attempt < 3; attempt++ {
		r0, ok, err := pkIx.tree.Search(key)
		if err != nil {
			return rid.Zero, nil, false, err
		}
		if !ok {
			return rid.Zero, nil, false, nil
		}
		if err := t.lock(r0); err != nil {
			return rid.Zero, nil, false, err
		}
		en = t.e.rmap.Get(r0)
		if en == nil && r0.IsVirtual() {
			if _, _, k, ok := t.e.cold.Lookup(r0); ok && k == 0 {
				// Frozen row: located, locked, live in the cold store.
				return r0, nil, true, nil
			}
			// Packed while we waited for the lock: the index entry has
			// been repointed; look up again.
			continue
		}
		return r0, en, true, nil
	}
	return rid.Zero, nil, false, ErrRetry
}

// currentImage reads the newest committed (or own uncommitted) image of
// a located, locked row.
func (t *Txn) currentImage(rt *tableRT, r0 rid.RID, en *imrs.Entry) (row.Row, []byte, bool, error) {
	if en != nil {
		v := en.Visible(math.MaxUint64, t.id)
		if v == nil {
			return nil, nil, false, nil // deleted
		}
		rw, err := t.e.decode(rt, v.Data())
		return rw, v.Data(), err == nil, err
	}
	if seg, idx, k, ok := t.e.cold.Lookup(r0); ok && k == 0 {
		enc, err := seg.EncodeRowAt(idx, nil)
		if err != nil {
			return nil, nil, false, err
		}
		rw, err := t.e.decode(rt, enc)
		return rw, enc, err == nil, err
	}
	prt := t.e.partByID(r0.Partition())
	data, err := prt.heap.Fetch(r0)
	if err != nil {
		return nil, nil, false, nil // deleted
	}
	rw, err := t.e.decode(rt, data)
	return rw, data, err == nil, err
}

// Update applies mutate to the row with the given primary key. Updates
// of IMRS rows create new versions; updates of page-store rows either
// migrate the row into the IMRS (unique-index access, Section IV) or
// update in place.
func (t *Txn) Update(table string, pk []row.Value, mutate func(row.Row) (row.Row, error)) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	if err := t.e.health.writable(); err != nil {
		return false, err
	}
	rt, err := t.e.table(table)
	if err != nil {
		return false, err
	}
	// Not pkKey: the key survives across the user's mutate callback,
	// which may issue reads that would recycle the shared key buffer.
	key := row.EncodeKey(nil, pk...)
	r0, en, found, err := t.locateForWrite(rt, key)
	if err != nil || !found {
		return false, err
	}
	cur, curEnc, ok, err := t.currentImage(rt, r0, en)
	if err != nil || !ok {
		return false, err
	}

	newRow, err := mutate(cur.Clone())
	if err != nil {
		return false, err
	}
	if err := rt.cat.Schema.Validate(newRow); err != nil {
		return false, err
	}
	newPK, err := pkOf(rt, newRow)
	if err != nil {
		return false, err
	}
	if !bytes.Equal(newPK, key) {
		return false, ErrPKChange
	}
	encSize := row.EncodedSize(newRow)
	if encSize > maxRowBytes {
		return false, ErrRowTooLarge
	}

	m := t.mark()
	prt := t.e.partByID(r0.Partition())
	// The first dirtying write of a frozen row pulls it out of the cold
	// store: the segment copy is killed at commit and the row's newest
	// image lives in the IMRS (migration) or back in the heap.
	coldRes := false
	if _, _, k, ok := t.e.cold.Lookup(r0); ok && k == 0 {
		coldRes = true
	}
	switch {
	case en != nil:
		if err := t.updateIMRS(rt, prt, r0, en, newRow, encSize); err != nil {
			t.unwind(m)
			return false, err
		}
		if coldRes {
			t.stageSegKill(rt, r0, true)
		}
	default:
		migrated := false
		if prt.ilm.Enabled(ilm.OpMigrate) && t.e.packer.AcceptNewRows() && t.e.imrsAdmission() {
			var err error
			migrated, en, err = t.migrate(rt, prt, r0, newRow, encSize)
			if err != nil {
				t.unwind(m)
				return false, err
			}
		}
		switch {
		case migrated && coldRes:
			t.stageSegKill(rt, r0, true)
		case !migrated && coldRes:
			enc := row.AppendEncoded(newRow, t.encBuf(encSize))
			newRID, err := t.unfreezeToHeap(rt, prt, r0, cur, enc)
			if err != nil {
				t.unwind(m)
				return false, err
			}
			t.stageSegKill(rt, r0, true)
			r0 = newRID
		case !migrated:
			enc := row.AppendEncoded(newRow, t.encBuf(encSize))
			if err := t.updatePage(rt, prt, r0, curEnc, enc); err != nil {
				t.unwind(m)
				return false, err
			}
		}
	}
	if err := t.updateSecondaryIndexes(rt, cur, newRow, r0, en); err != nil {
		t.unwind(m)
		return false, err
	}
	return true, nil
}

func (t *Txn) updateIMRS(rt *tableRT, prt *partRT, r0 rid.RID, en *imrs.Entry, rw row.Row, encSize int) error {
	var v *imrs.Version
	var err error
	if t.e.legacyAlloc {
		v, err = t.e.store.AddVersion(en, row.AppendEncoded(rw, nil), t.id)
	} else {
		v, err = t.e.store.AddVersionFunc(en, encSize, func(dst []byte) []byte {
			return row.AppendEncoded(rw, dst)
		}, t.id)
	}
	if err != nil {
		return err // cache absolutely full
	}
	en.MarkDirty()
	old := v.Older()
	t.undo = append(t.undo, func() { t.e.store.AbortVersion(en, v) })
	t.staged = append(t.staged, v)
	t.imrsRecs = append(t.imrsRecs, wal.Record{
		Type: wal.RecIMRSUpdate, Table: rt.cat.ID, RID: r0,
		Aux: uint8(en.Origin), After: v.Data(),
	})
	if old != nil && old.Committed() {
		t.atCommit = append(t.atCommit, func(ts uint64) {
			t.e.gc.RetireVersion(en, v, old, ts)
		})
	}
	en.Touch(t.e.clock.Now())
	prt.ilm.IMRSUpdates.Inc()
	return nil
}

// migrate moves a page-store row into the IMRS as part of an update
// (origin "migrated"). The page-store image stays behind (stale) and is
// refreshed when the row is eventually packed.
func (t *Txn) migrate(rt *tableRT, prt *partRT, r0 rid.RID, rw row.Row, encSize int) (bool, *imrs.Entry, error) {
	en, err := t.newEntry(r0, prt.cat.ID, imrs.OriginMigrated, rw, encSize)
	if err != nil {
		return false, nil, nil // cache full: fall back to in-place update
	}
	en.MarkDirty()
	v := en.Head()
	if !t.e.rmap.Put(r0, en) {
		t.e.store.AbortVersion(en, v)
		return false, nil, nil
	}
	t.undo = append(t.undo, func() {
		if !t.e.store.AbortVersion(en, v) {
			en.MarkPacked()
			t.e.rmap.Delete(r0, en)
		}
	})
	t.staged = append(t.staged, v)
	t.newEntries = append(t.newEntries, en)
	t.imrsRecs = append(t.imrsRecs, wal.Record{
		Type: wal.RecIMRSInsert, Table: rt.cat.ID, RID: r0,
		Aux: uint8(imrs.OriginMigrated), After: v.Data(),
	})
	// Hash fast-path entries for the migrated row (rw is the new image
	// the version holds; no re-decode needed).
	for _, ix := range rt.indexes {
		if ix.hash == nil {
			continue
		}
		ix := ix
		if k, err := indexKey(ix, rw, r0); err == nil {
			k := k
			ix.hash.Put(k, en)
			t.undo = append(t.undo, func() { ix.hash.Delete(k, en) })
		}
	}
	prt.ilm.PageOps.Inc()
	prt.ilm.Migrations.Inc()
	prt.ilm.NewRows.Inc()
	return true, en, nil
}

func (t *Txn) updatePage(rt *tableRT, prt *partRT, r0 rid.RID, before, after []byte) error {
	beforeCp := append([]byte(nil), before...)
	if err := prt.heap.Update(r0, after); err != nil {
		return err
	}
	t.undo = append(t.undo, func() { _ = prt.heap.Update(r0, beforeCp) })
	t.sysRecs = append(t.sysRecs, wal.Record{
		Type: wal.RecHeapUpdate, Table: rt.cat.ID, RID: r0,
		Before: beforeCp, After: after,
	})
	prt.ilm.PageOps.Inc()
	prt.ilm.PageReuseOps.Inc()
	return nil
}

// stageSegKill logs and (at commit) applies the kill of r's live cold
// copy. unfreeze marks the kill as a row pulled back by a write (the
// stat the ILM report surfaces) rather than a delete.
func (t *Txn) stageSegKill(rt *tableRT, r rid.RID, unfreeze bool) {
	t.sysRecs = append(t.sysRecs, wal.Record{
		Type: wal.RecSegKill, Table: rt.cat.ID, RID: r,
	})
	t.atCommit = append(t.atCommit, func(ts uint64) {
		t.e.cold.Kill(r, ts)
		if unfreeze {
			t.e.unfreezes.Add(1)
		}
	})
}

// unfreezeToHeap moves a frozen row back to the page store when the IMRS
// cannot take it (migration gated off or cache full), writing enc — the
// row's NEW image — to the heap. A physical RID reclaims its old slot
// when still free; otherwise (and for virtual RIDs) the row gets a fresh
// heap location and every index entry is repointed. Returns the RID the
// row now lives at.
func (t *Txn) unfreezeToHeap(rt *tableRT, prt *partRT, r0 rid.RID, cur row.Row, enc []byte) (rid.RID, error) {
	if !r0.IsVirtual() {
		if err := prt.heap.InsertAt(r0, enc); err == nil {
			t.undo = append(t.undo, func() { _ = prt.heap.Delete(r0) })
			t.sysRecs = append(t.sysRecs, wal.Record{
				Type: wal.RecHeapInsert, Table: rt.cat.ID, RID: r0, After: enc,
			})
			prt.ilm.PageOps.Inc()
			return r0, nil
		}
		// Slot occupied: either reused by an unrelated insert, or a stale
		// pre-freeze copy whose post-freeze delete failed. Overwrite only
		// the latter (same row, shadowed by the cold copy until now).
		if stale, err := prt.heap.Fetch(r0); err == nil {
			if srw, err := t.e.decode(rt, stale); err == nil {
				if sk, err1 := pkOf(rt, srw); err1 == nil {
					if ck, err2 := pkOf(rt, cur); err2 == nil && bytes.Equal(sk, ck) {
						if err := t.updatePage(rt, prt, r0, stale, enc); err != nil {
							return rid.Zero, err
						}
						return r0, nil
					}
				}
			}
		}
	}
	newRID, err := prt.heap.Insert(enc)
	if err != nil {
		return rid.Zero, err
	}
	if err := t.lock(newRID); err != nil {
		_ = prt.heap.Delete(newRID)
		return rid.Zero, err
	}
	t.undo = append(t.undo, func() { _ = prt.heap.Delete(newRID) })
	t.sysRecs = append(t.sysRecs, wal.Record{
		Type: wal.RecHeapInsert, Table: rt.cat.ID, RID: newRID, After: enc,
	})
	// Repoint every index entry from the dead cold RID to the heap one,
	// keyed by the row's CURRENT image (key changes are layered on by
	// updateSecondaryIndexes afterwards, against newRID).
	for _, ix := range rt.indexes {
		ix := ix
		oldK, err := indexKey(ix, cur, r0)
		if err != nil {
			return rid.Zero, err
		}
		if ix.def.Unique {
			if _, err := ix.tree.Update(oldK, newRID); err != nil {
				return rid.Zero, err
			}
			t.undo = append(t.undo, func() { _, _ = ix.tree.Update(oldK, r0) })
		} else {
			newK, err := indexKey(ix, cur, newRID)
			if err != nil {
				return rid.Zero, err
			}
			if _, _, err := ix.tree.Delete(oldK); err != nil {
				return rid.Zero, err
			}
			t.undo = append(t.undo, func() { _ = ix.tree.Insert(oldK, r0) })
			if err := ix.tree.Insert(newK, newRID); err != nil {
				return rid.Zero, err
			}
			t.undo = append(t.undo, func() { _, _, _ = ix.tree.Delete(newK) })
		}
	}
	prt.ilm.PageOps.Inc()
	return newRID, nil
}

// updateSecondaryIndexes maintains non-PK indexes across a key change:
// the new key is inserted now (readers filter by visibility) and the old
// key is removed once the change commits.
func (t *Txn) updateSecondaryIndexes(rt *tableRT, oldRow, newRow row.Row, r0 rid.RID, en *imrs.Entry) error {
	for _, ix := range rt.indexes[1:] {
		ix := ix
		oldK, err := indexKey(ix, oldRow, r0)
		if err != nil {
			return err
		}
		newK, err := indexKey(ix, newRow, r0)
		if err != nil {
			return err
		}
		if bytes.Equal(oldK, newK) {
			continue
		}
		if err := ix.tree.Insert(newK, r0); err != nil {
			if errors.Is(err, btree.ErrDuplicate) {
				return ErrDuplicateKey
			}
			return err
		}
		t.undo = append(t.undo, func() { _, _, _ = ix.tree.Delete(newK) })
		t.atCommit = append(t.atCommit, func(uint64) { _, _, _ = ix.tree.Delete(oldK) })
		if ix.hash != nil && en != nil {
			en := en
			ix.hash.Put(newK, en)
			t.undo = append(t.undo, func() { ix.hash.Delete(newK, en) })
			t.atCommit = append(t.atCommit, func(uint64) { ix.hash.Delete(oldK, en) })
		}
	}
	return nil
}

// Delete removes the row with the given primary key.
func (t *Txn) Delete(table string, pk []row.Value) (bool, error) {
	if t.done {
		return false, ErrTxnDone
	}
	if err := t.e.health.writable(); err != nil {
		return false, err
	}
	rt, err := t.e.table(table)
	if err != nil {
		return false, err
	}
	key := t.pkKey(pk)
	r0, en, found, err := t.locateForWrite(rt, key)
	if err != nil || !found {
		return false, err
	}
	cur, curEnc, ok, err := t.currentImage(rt, r0, en)
	if err != nil || !ok {
		return false, err
	}
	m := t.mark()
	prt := t.e.partByID(r0.Partition())
	coldRes := false
	if _, _, k, ok := t.e.cold.Lookup(r0); ok && k == 0 {
		coldRes = true
	}

	if en != nil {
		tomb := t.e.store.AddTombstone(en, t.id)
		t.undo = append(t.undo, func() { t.e.store.AbortVersion(en, tomb) })
		t.staged = append(t.staged, tomb)
		t.imrsRecs = append(t.imrsRecs, wal.Record{
			Type: wal.RecIMRSDelete, Table: rt.cat.ID, RID: r0, Aux: uint8(en.Origin),
		})
		if !r0.IsVirtual() {
			// The page store holds a (possibly stale) copy: log and apply
			// its deletion at commit.
			pageImg, err := prt.heap.Fetch(r0)
			if err == nil {
				t.sysRecs = append(t.sysRecs, wal.Record{
					Type: wal.RecHeapDelete, Table: rt.cat.ID, RID: r0, Before: pageImg,
				})
				t.atCommit = append(t.atCommit, func(uint64) { _ = prt.heap.Delete(r0) })
			}
		}
		en := en
		t.atCommit = append(t.atCommit, func(ts uint64) {
			en.MarkPacked()
			t.e.gc.RetireEntry(en, ts)
		})
		if coldRes {
			t.stageSegKill(rt, r0, false)
		}
		prt.ilm.IMRSDeletes.Inc()
	} else if coldRes {
		// Frozen row: killing the segment copy IS the delete. A stale
		// heap copy (failed post-freeze drop) goes too, if it is still
		// this row.
		t.stageSegKill(rt, r0, false)
		if !r0.IsVirtual() {
			if stale, err := prt.heap.Fetch(r0); err == nil {
				if srw, err := t.e.decode(rt, stale); err == nil {
					if sk, err := pkOf(rt, srw); err == nil && bytes.Equal(sk, key) {
						t.sysRecs = append(t.sysRecs, wal.Record{
							Type: wal.RecHeapDelete, Table: rt.cat.ID, RID: r0, Before: stale,
						})
						t.atCommit = append(t.atCommit, func(uint64) { _ = prt.heap.Delete(r0) })
					}
				}
			}
		}
		prt.ilm.PageOps.Inc()
	} else {
		// Free the slot at COMMIT, like the other delete paths — never
		// before the outcome is known. An eager delete hands the slot to
		// the free pool while this transaction can still abort: a
		// concurrent insert may take it, after which the abort's restore
		// has nowhere to put the committed row back (it is silently
		// lost behind a live index entry), and even on commit the two
		// transactions' records reach the log in insert-before-delete
		// order — inverted against the actual slot history, so replay
		// deletes the surviving row. Holding the slot until commit keeps
		// log order equal to application order.
		beforeCp := append([]byte(nil), curEnc...)
		t.sysRecs = append(t.sysRecs, wal.Record{
			Type: wal.RecHeapDelete, Table: rt.cat.ID, RID: r0, Before: beforeCp,
		})
		t.atCommit = append(t.atCommit, func(uint64) { _ = prt.heap.Delete(r0) })
		prt.ilm.PageOps.Inc()
		prt.ilm.PageReuseOps.Inc()
	}

	// Index entries disappear when the delete commits; until then other
	// transactions block on the row lock and re-check.
	if err := t.removeIndexEntriesAtCommit(rt, cur, r0, en); err != nil {
		t.unwind(m)
		return false, err
	}
	return true, nil
}

func (t *Txn) removeIndexEntriesAtCommit(rt *tableRT, rw row.Row, r0 rid.RID, en *imrs.Entry) error {
	for _, ix := range rt.indexes {
		ix := ix
		k, err := indexKey(ix, rw, r0)
		if err != nil {
			return err
		}
		t.atCommit = append(t.atCommit, func(uint64) { _, _, _ = ix.tree.Delete(k) })
		if ix.hash != nil && en != nil {
			en := en
			t.atCommit = append(t.atCommit, func(uint64) { ix.hash.Delete(k, en) })
		}
	}
	return nil
}
