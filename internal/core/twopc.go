package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/rid"
	"repro/internal/wal"
)

// Two-phase commit across engine shards (DESIGN.md §12). Each shard is
// a complete engine with its own logs; a cross-shard transaction is a
// set of per-shard participant transactions tied together by a global
// transaction id. The protocol layers on the existing group-commit
// pipeline:
//
//  1. Prepare (every participant): the participant's records become
//     durable exactly as in a normal commit, except the syslogs marker
//     is a RecPrepare (carrying the global id and coordinator shard)
//     instead of a RecCommit, and the sysimrslogs IMRSCommit is always
//     flagged contingent (Aux=1) — recovery applies it only if the
//     local syslogs outcome is commit.
//  2. Decide (coordinator shard only): a RecDecide for the global id is
//     made durable in the coordinator's syslogs. This record is the
//     commit point of the whole transaction.
//  3. CommitPrepared (every participant): a local RecCommit is logged
//     and the transaction publishes in memory. The local RecCommit is
//     an optimization — if it is lost, recovery resolves the prepare
//     through the coordinator's decision.
//
// Presumed abort: a prepare with no local RecCommit/RecAbort and no
// coordinator decision is a loser. The wal layer's contract makes that
// sound: WaitDurable returning an error means the record is not durable
// and can never become durable (a failed commit flush poisons the log
// and scrubs back to the durable watermark; a halted pipeline never
// flushes again), so a failed Decide really did not commit.

// TwoPCOutcome is a resolver's verdict for an in-doubt prepared
// transaction found during recovery.
type TwoPCOutcome uint8

// Resolver verdicts.
const (
	// TwoPCUnknown: the coordinator's decisions could not be read. The
	// engine treats the transaction as aborted for replay purposes but
	// parks itself ReadOnly — serving writes on top of an unresolvable
	// in-doubt transaction could diverge from its peers.
	TwoPCUnknown TwoPCOutcome = iota
	// TwoPCCommit: the coordinator durably decided commit.
	TwoPCCommit
	// TwoPCAbort: the coordinator durably decided abort, or has no
	// decision on record (presumed abort).
	TwoPCAbort
)

// String implements fmt.Stringer.
func (o TwoPCOutcome) String() string {
	switch o {
	case TwoPCCommit:
		return "commit"
	case TwoPCAbort:
		return "abort"
	default:
		return "unknown"
	}
}

// twopcCounters is the engine's cross-shard commit accounting.
type twopcCounters struct {
	prepares        atomic.Int64 // participant prepares made durable
	preparedCommits atomic.Int64 // prepared transactions committed
	preparedAborts  atomic.Int64 // prepared transactions rolled back
	decisions       atomic.Int64 // coordinator decision records logged
}

// Prepare is phase one of a cross-shard commit: it makes the
// transaction's records durable under a RecPrepare marker carrying the
// global transaction id and the coordinator shard index, and reserves
// the commit timestamp the transaction will publish at. After a
// successful Prepare the transaction holds its row locks and must be
// finished with CommitPrepared (once the coordinator's decision is
// durable) or AbortPrepared. On error the transaction has rolled back.
func (t *Txn) Prepare(gid uint64, coordShard uint32) error {
	if t.done {
		return ErrTxnDone
	}
	if t.prepared {
		return fmt.Errorf("core: transaction %d already prepared", t.id)
	}
	ts := t.e.clock.Tick()

	// Same append-then-wait pipeline as Commit. The IMRS half is always
	// contingent (Aux=1): whether it applies at recovery is decided by
	// the syslogs outcome — local RecCommit, or the coordinator's decide
	// record resolved into the winner set. Ordering is safe without a
	// barrier between the logs here: the decision record that could make
	// this transaction a winner is only logged after every participant's
	// Prepare (both waits included) has succeeded.
	var imrsLSN uint64
	hasIMRS := len(t.imrsRecs) > 0
	if hasIMRS {
		for i := range t.imrsRecs {
			t.imrsRecs[i].TxnID = t.id
			if _, err := t.e.imrslog.Append(&t.imrsRecs[i]); err != nil {
				t.rollbackAfterLogError()
				return err
			}
		}
		cr := wal.Record{Type: wal.RecIMRSCommit, TxnID: t.id, CommitTS: ts, Aux: 1}
		lsn, err := t.e.imrslog.Append(&cr)
		if err != nil {
			t.rollbackAfterLogError()
			return err
		}
		imrsLSN = lsn
	}
	for i := range t.sysRecs {
		t.sysRecs[i].TxnID = t.id
		if _, err := t.e.syslog.Append(&t.sysRecs[i]); err != nil {
			t.rollbackAfterLogError()
			return err
		}
	}
	// The prepare marker always goes to syslogs — even for IMRS-only
	// participants — because recovery's in-doubt resolution is keyed off
	// the syslogs prepare set.
	pr := wal.Record{Type: wal.RecPrepare, TxnID: t.id, Table: coordShard, RID: rid.RID(gid), CommitTS: ts}
	plsn, err := t.e.syslog.Append(&pr)
	if err != nil {
		t.rollbackAfterLogError()
		return err
	}
	if hasIMRS {
		if err := t.e.imrslog.WaitDurable(imrsLSN); err != nil {
			t.rollbackAfterLogError()
			return err
		}
	}
	if err := t.e.syslog.WaitDurable(plsn); err != nil {
		t.rollbackAfterLogError()
		return err
	}
	t.prepared = true
	t.prepTS = ts
	t.e.twopc.prepares.Add(1)
	return nil
}

// CommitPrepared is phase three: the caller guarantees the
// coordinator's commit decision is already durable. The transaction is
// therefore committed no matter what happens here — a failed local
// RecCommit flush is surfaced through the health FSM (the poisoned log
// forces the shard ReadOnly) and returned for accounting, but the
// transaction still publishes in memory: recovery will re-apply it from
// the prepare records plus the coordinator's decision.
func (t *Txn) CommitPrepared() error {
	if t.done {
		return ErrTxnDone
	}
	if !t.prepared {
		return fmt.Errorf("core: CommitPrepared on an unprepared transaction")
	}
	ts := t.prepTS
	var commitErr error
	cr := wal.Record{Type: wal.RecCommit, TxnID: t.id, CommitTS: ts}
	lsn, err := t.e.syslog.Append(&cr)
	if err == nil {
		err = t.e.syslog.WaitDurable(lsn)
	}
	if err != nil {
		t.e.notePoison() // ckptMu is held shared until finish()
		commitErr = fmt.Errorf("core: prepared transaction %d committed, local commit marker lost: %w", t.id, err)
	}
	for _, v := range t.staged {
		t.e.store.Commit(v, ts)
	}
	for _, fn := range t.atCommit {
		fn(ts)
	}
	for _, en := range t.newEntries {
		en.Touch(ts)
		t.e.gc.NewRow(en)
	}
	t.e.twopc.preparedCommits.Add(1)
	t.finish()
	return commitErr
}

// AbortPrepared rolls back a transaction after Prepare (or after a
// failed Prepare on a peer participant). The RecAbort it logs is a
// best-effort optimization that spares the next recovery a resolver
// lookup; presumed abort makes its durability unnecessary, so no flush
// is awaited.
func (t *Txn) AbortPrepared() {
	if t.done {
		return
	}
	if t.prepared {
		ar := wal.Record{Type: wal.RecAbort, TxnID: t.id}
		_, _ = t.e.syslog.Append(&ar)
		t.e.twopc.preparedAborts.Add(1)
	}
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	t.finish()
}

// LogDecision durably records the coordinator's decision for global
// transaction gid in this engine's syslogs. A nil return means the
// decision IS durable (the commit point, for commit=true); an error
// means it is not and never will be — the wal contract guarantees a
// failed commit-path flush cannot surface later — so the caller may
// safely abort every participant.
func (e *Engine) LogDecision(gid uint64, commit bool) error {
	if err := e.health.writable(); err != nil {
		return err
	}
	aux := uint8(0)
	if commit {
		aux = 1
	}
	rec := wal.Record{Type: wal.RecDecide, TxnID: gid, Table: e.cfg.ShardID, RID: rid.RID(gid), CommitTS: e.clock.Now(), Aux: aux}
	lsn, err := e.syslog.Append(&rec)
	if err == nil {
		err = e.syslog.WaitDurable(lsn)
	}
	if err != nil {
		// Only the syslog can be poisoned here, and it never swaps (unlike
		// imrslog), so this is safe without holding ckptMu.
		if perr := e.syslog.Poisoned(); perr != nil {
			e.health.forceReadOnly(perr)
		}
		return err
	}
	e.twopc.decisions.Add(1)
	e.noteDecision(e.cfg.ShardID, gid, commit)
	return nil
}

// decisionKey scopes a global transaction id by the coordinator shard
// that issued it: gids are the coordinator's local transaction ids and
// collide across coordinators.
type decisionKey struct {
	coord uint32
	gid   uint64
}

// noteDecision indexes one known decision in memory.
func (e *Engine) noteDecision(coord uint32, gid uint64, commit bool) {
	e.decMu.Lock()
	if e.decIndex == nil {
		e.decIndex = make(map[decisionKey]bool)
	}
	e.decIndex[decisionKey{coord, gid}] = commit
	e.decMu.Unlock()
}

// DecisionFor reports this engine's durable knowledge of the 2PC
// outcome for (coord, gid): decisions it logged as the coordinator and
// decisions peers wrote back. known=false means this engine has no
// record — NOT presumed abort; only the coordinator's complete log can
// presume.
func (e *Engine) DecisionFor(gid uint64, coord uint32) (commit, known bool) {
	e.decMu.RLock()
	commit, known = e.decIndex[decisionKey{coord, gid}]
	e.decMu.RUnlock()
	return commit, known
}

// NoteDecision records a decision learned from the coordinator (phase-3
// write-back or the node-level resolver) in this engine's own syslogs,
// so the next recovery resolves the outcome locally without reaching
// the coordinator. The append is best-effort and rides the next group
// commit — durability is an optimization here, the coordinator's record
// stays authoritative — and is skipped entirely when the engine cannot
// write. The in-memory index is updated regardless so runtime probes
// see it.
func (e *Engine) NoteDecision(gid uint64, coord uint32, commit bool) {
	e.noteDecision(coord, gid, commit)
	if e.health.writable() != nil {
		return
	}
	aux := uint8(0)
	if commit {
		aux = 1
	}
	rec := wal.Record{Type: wal.RecDecide, TxnID: gid, Table: coord, RID: rid.RID(gid), Aux: aux}
	_, _ = e.syslog.Append(&rec)
}

// InDoubtTxn is one prepared transaction recovery could not resolve:
// the local participant transaction, the global id, and the coordinator
// shard whose decision is missing.
type InDoubtTxn struct {
	LocalID uint64 // participant's local transaction id
	GID     uint64 // global transaction id (coordinator's local id)
	Coord   uint32 // coordinator shard index
	TS      uint64 // reserved commit timestamp from the prepare
}

// UnresolvedInDoubt returns the in-doubt transactions that parked this
// engine ReadOnly at recovery, empty once resolved (or if recovery
// resolved everything).
func (e *Engine) UnresolvedInDoubt() []InDoubtTxn {
	e.inDoubtMu.Lock()
	defer e.inDoubtMu.Unlock()
	return append([]InDoubtTxn(nil), e.inDoubtPending...)
}

// ResolveInDoubtAborted resolves every pending in-doubt transaction as
// aborted — the caller has established that no coordinator decision
// exists (presumed abort against a live or recovered coordinator log) —
// and exits the recoverable ReadOnly park in place. Recovery already
// replayed these transactions as losers, so no data movement is needed;
// durable abort markers are logged so the next recovery does not
// re-park, then the health FSM transitions out of ReadOnly.
func (e *Engine) ResolveInDoubtAborted() error {
	e.inDoubtMu.Lock()
	defer e.inDoubtMu.Unlock()
	if len(e.inDoubtPending) == 0 {
		return fmt.Errorf("core: no unresolved in-doubt transactions")
	}
	if err := e.syslog.Poisoned(); err != nil {
		return fmt.Errorf("core: cannot resolve in-doubt transactions: %w", err)
	}
	var lsn uint64
	for _, p := range e.inDoubtPending {
		ar := wal.Record{Type: wal.RecAbort, TxnID: p.LocalID}
		l, err := e.syslog.Append(&ar)
		if err != nil {
			return fmt.Errorf("core: abort marker for in-doubt txn %d: %w", p.LocalID, err)
		}
		lsn = l
	}
	if err := e.syslog.Flush(lsn); err != nil {
		return fmt.Errorf("core: flush in-doubt abort markers: %w", err)
	}
	n := len(e.inDoubtPending)
	if err := e.health.exitReadOnly(fmt.Sprintf("%d in-doubt transaction(s) resolved abort", n)); err != nil {
		return err
	}
	e.inDoubtPending = nil
	return nil
}
