package fault

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	base := errors.New("io broke")
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, Permanent},
		{"plain", base, Permanent},
		{"marked", MarkTransient(base), Transient},
		{"wrapped marked", fmt.Errorf("flush: %w", MarkTransient(base)), Transient},
		{"marked wrapped", MarkTransient(fmt.Errorf("flush: %w", base)), Transient},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) should be nil")
	}
	if !errors.Is(MarkTransient(base), base) {
		t.Error("MarkTransient must keep the cause reachable via errors.Is")
	}
}

// An exhaustion error wraps a transient cause, but must itself classify
// permanent: a retrier stacked above another must not multiply attempts
// against an operation the lower layer already gave up on.
func TestExhaustedShadowsTransient(t *testing.T) {
	r := NewRetrier(Policy{MaxAttempts: 2})
	r.Sleep = func(time.Duration) {}
	cause := MarkTransient(errors.New("down"))
	err := r.Do(func() error { return cause })
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v", err)
	}
	if IsTransient(err) {
		t.Fatal("exhausted error must classify permanent")
	}
	outer := NewRetrier(Policy{MaxAttempts: 5})
	outer.Sleep = func(time.Duration) { t.Fatal("outer retrier must not back off an exhausted error") }
	calls := 0
	_ = outer.Do(func() error { calls++; return err })
	if calls != 1 {
		t.Fatalf("outer retrier ran %d attempts, want 1", calls)
	}
}

func TestRetrierRecoversTransient(t *testing.T) {
	r := NewRetrier(Policy{MaxAttempts: 4})
	var slept []time.Duration
	r.Sleep = func(d time.Duration) { slept = append(slept, d) }
	recovered := 0
	r.OnRecovered = func() { recovered++ }

	fails := 2
	err := r.Do(func() error {
		if fails > 0 {
			fails--
			return MarkTransient(errors.New("blip"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	if recovered != 1 {
		t.Fatalf("OnRecovered fired %d times, want 1", recovered)
	}
	s := r.Stats()
	if s.Attempts != 1 || s.Retries != 2 || s.Exhausted != 0 || s.Recovered != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRetrierPermanentNoRetry(t *testing.T) {
	r := NewRetrier(Policy{MaxAttempts: 5})
	r.Sleep = func(time.Duration) { t.Fatal("should not sleep for a permanent error") }
	perm := errors.New("corrupt")
	calls := 0
	err := r.Do(func() error { calls++; return perm })
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want the permanent error after exactly 1 call", err, calls)
	}
	if errors.Is(err, ErrExhausted) {
		t.Fatal("a permanent failure must not be reported as exhaustion")
	}
}

func TestRetrierExhaustion(t *testing.T) {
	r := NewRetrier(Policy{MaxAttempts: 3})
	r.Sleep = func(time.Duration) {}
	var hook error
	r.OnExhausted = func(err error) { hook = err }
	cause := errors.New("still down")
	calls := 0
	err := r.Do(func() error { calls++; return MarkTransient(cause) })
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, ErrExhausted) || !errors.Is(err, cause) {
		t.Fatalf("err = %v, want both ErrExhausted and the cause in the chain", err)
	}
	if hook == nil || !errors.Is(hook, ErrExhausted) {
		t.Fatalf("OnExhausted got %v", hook)
	}
	if s := r.Stats(); s.Exhausted != 1 || s.Retries != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRetrierBackoffBounds(t *testing.T) {
	p := Policy{
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
	}
	r := NewRetrier(p)
	for n := 1; n <= 5; n++ {
		// Un-jittered ceiling: base * mult^(n-1), capped at MaxDelay.
		ceil := time.Millisecond << (n - 1)
		if ceil > p.MaxDelay {
			ceil = p.MaxDelay
		}
		for i := 0; i < 50; i++ {
			d := r.delay(n)
			if d > ceil || d < ceil/2 {
				t.Fatalf("delay(%d) = %v outside [%v, %v]", n, d, ceil/2, ceil)
			}
		}
	}
}

func TestNilRetrier(t *testing.T) {
	var r *Retrier
	calls := 0
	werr := MarkTransient(errors.New("x"))
	if err := r.Do(func() error { calls++; return werr }); err != werr || calls != 1 {
		t.Fatalf("nil retrier must run op exactly once and return its error; err=%v calls=%d", err, calls)
	}
	if s := r.Stats(); s != (Stats{}) {
		t.Fatalf("nil retrier stats = %+v", s)
	}
}
