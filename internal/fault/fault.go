// Package fault is the shared failure-handling substrate of the engine:
// it classifies backend errors as transient (worth retrying) or
// permanent (surface immediately), and provides a bounded
// exponential-backoff retrier with jitter that the storage device, both
// WAL flush paths, and the background checkpoint wrap around their
// fallible operations. The health FSM in internal/core consumes the
// retrier's exhaustion/recovery hooks to drive Healthy → Degraded
// transitions (DESIGN.md §9).
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// Class is the retry classification of an error.
type Class uint8

// Classes. Unknown errors default to Permanent: retrying an error we do
// not understand risks hammering a sick device and, worse, masking a
// correctness problem as latency.
const (
	Permanent Class = iota
	Transient
)

// String implements fmt.Stringer.
func (c Class) String() string {
	if c == Transient {
		return "transient"
	}
	return "permanent"
}

// transienter is the marker interface: any error (anywhere in a wrapped
// chain) reporting FaultTransient() true classifies as Transient.
// Backends tag their retryable failures by implementing it or by
// wrapping with MarkTransient.
type transienter interface {
	FaultTransient() bool
}

// transientError is the wrapper produced by MarkTransient.
type transientError struct{ err error }

func (e *transientError) Error() string        { return e.err.Error() }
func (e *transientError) Unwrap() error        { return e.err }
func (e *transientError) FaultTransient() bool { return true }

// MarkTransient tags err as transient for Classify. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// Classify returns the verdict of the OUTERMOST transient marker in
// err's wrap chain, Permanent when there is none. Outermost-wins is
// what lets an exhaustion error shadow the transient cause it wraps:
// a layered retrier must not re-retry an operation a lower layer
// already gave up on (retry amplification).
func Classify(err error) Class {
	var t transienter
	if errors.As(err, &t) && t.FaultTransient() {
		return Transient
	}
	return Permanent
}

// IsTransient reports whether err classifies as Transient.
func IsTransient(err error) bool { return Classify(err) == Transient }

// ErrExhausted marks an error returned after every retry attempt failed.
// The last underlying failure stays reachable through errors.Is/As.
var ErrExhausted = errors.New("fault: retries exhausted")

// exhaustedError wraps the final failure of an exhausted retry loop.
type exhaustedError struct {
	attempts int
	err      error
}

func (e *exhaustedError) Error() string {
	return fmt.Sprintf("fault: %d attempts exhausted: %v", e.attempts, e.err)
}
func (e *exhaustedError) Unwrap() error { return e.err }
func (e *exhaustedError) Is(target error) bool {
	return target == ErrExhausted
}

// FaultTransient shadows the wrapped transient cause: once a retrier
// has exhausted its budget the failure is permanent to every layer
// above it.
func (e *exhaustedError) FaultTransient() bool { return false }

// Policy bounds a retry loop. Zero-value fields take the defaults below.
type Policy struct {
	// MaxAttempts is the total number of tries, the first included.
	MaxAttempts int
	// BaseDelay is the sleep before the first retry; each subsequent
	// retry multiplies it by Multiplier up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the per-retry sleep.
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor.
	Multiplier float64
	// Jitter is the fraction of each delay randomized away (0..1): the
	// actual sleep is uniform in [d*(1-Jitter), d]. De-synchronizes
	// retriers hitting a shared sick device.
	Jitter float64
}

// Default policy values.
const (
	DefaultMaxAttempts = 5
	DefaultBaseDelay   = 200 * time.Microsecond
	DefaultMaxDelay    = 20 * time.Millisecond
	DefaultMultiplier  = 2.0
	DefaultJitter      = 0.2
)

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = DefaultMultiplier
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = DefaultJitter
	}
	return p
}

// Stats are a retrier's cumulative counters.
type Stats struct {
	// Attempts counts operations passed through Do.
	Attempts int64
	// Retries counts individual re-tries after a transient failure.
	Retries int64
	// Exhausted counts operations that failed even after MaxAttempts.
	Exhausted int64
	// Recovered counts operations that succeeded after at least one retry.
	Recovered int64
}

// Retrier runs operations under a Policy. A nil *Retrier is valid and
// runs operations directly with no retry (the DisableRetry path).
// Retried operations must be idempotent across FAILED attempts: every
// backend in this repo writes at an explicit offset (or is atomic), so
// re-running after a failed write never duplicates bytes.
type Retrier struct {
	policy Policy

	attempts  atomic.Int64
	retries   atomic.Int64
	exhausted atomic.Int64
	recovered atomic.Int64

	// Sleep is the delay function (tests inject a recorder; the chaos
	// harness injects a deterministic no-op to keep cycles fast).
	Sleep func(time.Duration)

	// OnExhausted fires when an operation fails after the final attempt
	// (with the exhaustion error); OnRecovered fires when an operation
	// succeeds after at least one retry. The engine's health FSM listens
	// on both. Either may be nil. Hooks must not call back into the
	// retrier.
	OnExhausted func(error)
	OnRecovered func()
}

// NewRetrier builds a retrier over p (zero fields defaulted).
func NewRetrier(p Policy) *Retrier {
	return &Retrier{policy: p.withDefaults(), Sleep: time.Sleep}
}

// Policy returns the effective (defaulted) policy.
func (r *Retrier) Policy() Policy {
	if r == nil {
		return Policy{MaxAttempts: 1}
	}
	return r.policy
}

// Stats snapshots the counters. Safe on a nil retrier.
func (r *Retrier) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	return Stats{
		Attempts:  r.attempts.Load(),
		Retries:   r.retries.Load(),
		Exhausted: r.exhausted.Load(),
		Recovered: r.recovered.Load(),
	}
}

// delay computes the jittered backoff before retry number n (1-based).
func (r *Retrier) delay(n int) time.Duration {
	d := float64(r.policy.BaseDelay)
	for i := 1; i < n; i++ {
		d *= r.policy.Multiplier
		if d >= float64(r.policy.MaxDelay) {
			d = float64(r.policy.MaxDelay)
			break
		}
	}
	if r.policy.Jitter > 0 {
		d -= d * r.policy.Jitter * rand.Float64()
	}
	return time.Duration(d)
}

// Do runs op, retrying transient failures under the policy. Permanent
// failures return immediately. When every attempt fails, the returned
// error wraps both ErrExhausted and the last failure. On a nil retrier,
// Do is exactly op().
func (r *Retrier) Do(op func() error) error {
	if r == nil {
		return op()
	}
	r.attempts.Add(1)
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil {
			if attempt > 1 {
				r.recovered.Add(1)
				if r.OnRecovered != nil {
					r.OnRecovered()
				}
			}
			return nil
		}
		if !IsTransient(err) {
			return err
		}
		if attempt >= r.policy.MaxAttempts {
			break
		}
		r.retries.Add(1)
		if r.Sleep != nil {
			r.Sleep(r.delay(attempt))
		}
	}
	r.exhausted.Add(1)
	ex := &exhaustedError{attempts: r.policy.MaxAttempts, err: err}
	if r.OnExhausted != nil {
		r.OnExhausted(ex)
	}
	return ex
}
