// Package txn provides transaction infrastructure: the database commit
// timestamp (the atomic counter the paper's TSF mechanism is defined
// against, Section VI-D), a reentrant row lock manager with the
// conditional lock acquisition Pack relies on (Section VII-B), and a
// snapshot registry that gates IMRS garbage collection.
package txn

import "sync/atomic"

// Clock is the database commit timestamp: an atomic counter incremented
// when a transaction in the database completes (paper Section VI-D).
type Clock struct {
	ts atomic.Uint64
}

// Now returns the current commit timestamp without advancing it; readers
// use it as their snapshot.
func (c *Clock) Now() uint64 { return c.ts.Load() }

// Tick advances the clock and returns the new commit timestamp.
func (c *Clock) Tick() uint64 { return c.ts.Add(1) }

// AdvanceTo moves the clock forward to at least ts (recovery replay).
func (c *Clock) AdvanceTo(ts uint64) {
	for {
		cur := c.ts.Load()
		if cur >= ts || c.ts.CompareAndSwap(cur, ts) {
			return
		}
	}
}
