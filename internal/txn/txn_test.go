package txn

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/rid"
)

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock should be 0")
	}
	if c.Tick() != 1 || c.Tick() != 2 {
		t.Fatal("Tick sequence wrong")
	}
	c.AdvanceTo(100)
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo: %d", c.Now())
	}
	c.AdvanceTo(50) // never goes backwards
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo went backwards: %d", c.Now())
	}
}

func TestClockConcurrentTicks(t *testing.T) {
	var c Clock
	const workers, per = 8, 1000
	seen := make([]map[uint64]bool, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		seen[w] = make(map[uint64]bool, per)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen[w][c.Tick()] = true
			}
		}(w)
	}
	wg.Wait()
	all := map[uint64]bool{}
	for _, m := range seen {
		for ts := range m {
			if all[ts] {
				t.Fatalf("duplicate commit TS %d", ts)
			}
			all[ts] = true
		}
	}
	if c.Now() != workers*per {
		t.Fatalf("final clock %d, want %d", c.Now(), workers*per)
	}
}

func TestLockBasics(t *testing.T) {
	m := NewLockManager(time.Second)
	r := rid.NewPhysical(1, 1, 1)
	if err := m.Lock(1, r); err != nil {
		t.Fatal(err)
	}
	if !m.HeldBy(1, r) {
		t.Fatal("lock not held")
	}
	// Reentrant.
	if err := m.Lock(1, r); err != nil {
		t.Fatal(err)
	}
	m.Unlock(1, r)
	if !m.HeldBy(1, r) {
		t.Fatal("reentrant lock released too early")
	}
	m.Unlock(1, r)
	if m.HeldBy(1, r) {
		t.Fatal("lock still held after full unlock")
	}
}

func TestTryLockConditional(t *testing.T) {
	m := NewLockManager(time.Second)
	r := rid.NewPhysical(1, 1, 1)
	if !m.TryLock(1, r) {
		t.Fatal("TryLock on free lock failed")
	}
	if m.TryLock(2, r) {
		t.Fatal("TryLock on held lock succeeded")
	}
	if !m.TryLock(1, r) {
		t.Fatal("reentrant TryLock failed")
	}
	m.Unlock(1, r)
	m.Unlock(1, r)
	if !m.TryLock(2, r) {
		t.Fatal("TryLock after release failed")
	}
	m.Unlock(2, r)
}

func TestLockBlocksAndHandsOff(t *testing.T) {
	m := NewLockManager(2 * time.Second)
	r := rid.NewPhysical(1, 1, 1)
	if err := m.Lock(1, r); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		if err := m.Lock(2, r); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("waiter acquired while held")
	case <-time.After(50 * time.Millisecond):
	}
	m.Unlock(1, r)
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("waiter never acquired after release")
	}
	m.Unlock(2, r)
}

func TestLockTimeout(t *testing.T) {
	m := NewLockManager(50 * time.Millisecond)
	r := rid.NewPhysical(1, 1, 1)
	if err := m.Lock(1, r); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Lock(2, r)
	if err != ErrLockTimeout {
		t.Fatalf("err = %v, want ErrLockTimeout", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("timed out too fast")
	}
	m.Unlock(1, r)
	// Lock must still be grantable after a timed-out waiter.
	if err := m.Lock(3, r); err != nil {
		t.Fatal(err)
	}
	m.Unlock(3, r)
}

func TestLockStress(t *testing.T) {
	m := NewLockManager(5 * time.Second)
	r := rid.NewPhysical(1, 1, 1)
	var counter int
	const workers, per = 8, 300
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := m.Lock(id, r); err != nil {
					t.Error(err)
					return
				}
				counter++
				m.Unlock(id, r)
			}
		}(uint64(w))
	}
	wg.Wait()
	if counter != workers*per {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, workers*per)
	}
}

func TestUnlockNotHeldPanics(t *testing.T) {
	m := NewLockManager(time.Second)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Unlock(1, rid.NewPhysical(1, 1, 1))
}

func TestSnapshotRegistry(t *testing.T) {
	s := NewSnapshotRegistry()
	if s.MinActive() != math.MaxUint64 {
		t.Fatal("empty registry should report MaxUint64")
	}
	r10 := s.Register(10)
	r5a := s.Register(5)
	r5b := s.Register(5)
	if s.MinActive() != 5 {
		t.Fatalf("MinActive = %d, want 5", s.MinActive())
	}
	s.Unregister(r5a)
	if s.MinActive() != 5 {
		t.Fatal("refcounted snapshot dropped too early")
	}
	s.Unregister(r5b)
	if s.MinActive() != 10 {
		t.Fatalf("MinActive = %d, want 10", s.MinActive())
	}
	s.Unregister(r10)
	if s.ActiveCount() != 0 {
		t.Fatal("registry not empty")
	}
}

func TestSnapshotRegistryConcurrent(t *testing.T) {
	s := NewSnapshotRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ts := uint64(w*1000 + i)
				s.Unregister(s.Register(ts))
			}
		}(w)
	}
	wg.Wait()
	if s.ActiveCount() != 0 {
		t.Fatalf("leaked %d snapshots", s.ActiveCount())
	}
}
