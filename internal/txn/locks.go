package txn

import (
	"errors"
	"time"

	"repro/internal/rid"
	"sync"
)

// ErrLockTimeout reports that a blocking lock acquisition gave up; the
// caller should abort its transaction (the engine's deadlock breaker).
var ErrLockTimeout = errors.New("txn: lock wait timeout")

// DefaultLockTimeout bounds blocking lock waits.
const DefaultLockTimeout = 5 * time.Second

const lockShards = 64

type lockEntry struct {
	holder  uint64 // owning transaction id; 0 when free
	count   int    // reentrancy count
	waiters int
	release chan struct{} // closed and replaced on every release
}

type lockShard struct {
	mu      sync.Mutex
	entries map[rid.RID]*lockEntry
}

// LockManager grants exclusive row locks keyed by RID. Locks are
// reentrant per transaction. TryLock implements the conditional lock
// acquisition used by Pack: if a row lock cannot be granted immediately,
// the row is skipped (paper Section VII-B).
type LockManager struct {
	shards  [lockShards]lockShard
	timeout time.Duration
}

// NewLockManager returns a manager with the given wait timeout
// (DefaultLockTimeout when zero).
func NewLockManager(timeout time.Duration) *LockManager {
	if timeout <= 0 {
		timeout = DefaultLockTimeout
	}
	m := &LockManager{timeout: timeout}
	for i := range m.shards {
		m.shards[i].entries = make(map[rid.RID]*lockEntry)
	}
	return m
}

func (m *LockManager) shard(r rid.RID) *lockShard {
	h := uint64(r)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return &m.shards[h%lockShards]
}

// Lock acquires the exclusive lock on r for txnID, blocking up to the
// manager timeout. It is reentrant for the same transaction.
func (m *LockManager) Lock(txnID uint64, r rid.RID) error {
	s := m.shard(r)
	deadline := time.Now().Add(m.timeout)
	for {
		s.mu.Lock()
		e, ok := s.entries[r]
		if !ok {
			e = &lockEntry{release: make(chan struct{})}
			s.entries[r] = e
		}
		if e.holder == 0 || e.holder == txnID {
			e.holder = txnID
			e.count++
			s.mu.Unlock()
			return nil
		}
		wait := e.release
		e.waiters++
		s.mu.Unlock()

		remaining := time.Until(deadline)
		if remaining <= 0 {
			m.dropWaiter(s, r)
			return ErrLockTimeout
		}
		t := time.NewTimer(remaining)
		select {
		case <-wait:
			t.Stop()
			m.dropWaiter(s, r)
		case <-t.C:
			m.dropWaiter(s, r)
			return ErrLockTimeout
		}
	}
}

func (m *LockManager) dropWaiter(s *lockShard, r rid.RID) {
	s.mu.Lock()
	if e, ok := s.entries[r]; ok {
		e.waiters--
		if e.holder == 0 && e.waiters == 0 && e.count == 0 {
			delete(s.entries, r)
		}
	}
	s.mu.Unlock()
}

// TryLock attempts the lock without waiting and reports success.
func (m *LockManager) TryLock(txnID uint64, r rid.RID) bool {
	s := m.shard(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[r]
	if !ok {
		e = &lockEntry{release: make(chan struct{})}
		s.entries[r] = e
	}
	if e.holder == 0 || e.holder == txnID {
		e.holder = txnID
		e.count++
		return true
	}
	return false
}

// Unlock releases one acquisition of r by txnID. Fully released locks
// wake all waiters.
func (m *LockManager) Unlock(txnID uint64, r rid.RID) {
	s := m.shard(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[r]
	if !ok || e.holder != txnID {
		panic("txn: unlock of lock not held")
	}
	e.count--
	if e.count > 0 {
		return
	}
	e.holder = 0
	close(e.release)
	e.release = make(chan struct{})
	if e.waiters == 0 {
		delete(s.entries, r)
	}
}

// HeldBy reports whether txnID currently holds r (tests).
func (m *LockManager) HeldBy(txnID uint64, r rid.RID) bool {
	s := m.shard(r)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[r]
	return ok && e.holder == txnID
}
