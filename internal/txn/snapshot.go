package txn

import (
	"math"
	"sync"
)

// SnapshotRegistry tracks the snapshot timestamps of active statements
// and transactions. IMRS-GC may only reclaim a row version once no
// active snapshot can still read it; the paper calls the equivalent
// shield for lock-free scanners "statement registration" (Section VII-B).
type SnapshotRegistry struct {
	mu     sync.Mutex
	active map[uint64]int // snapshot ts -> refcount
}

// NewSnapshotRegistry returns an empty registry.
func NewSnapshotRegistry() *SnapshotRegistry {
	return &SnapshotRegistry{active: make(map[uint64]int)}
}

// Register records an active snapshot at ts. The caller must Unregister
// the same ts exactly once.
func (s *SnapshotRegistry) Register(ts uint64) {
	s.mu.Lock()
	s.active[ts]++
	s.mu.Unlock()
}

// Unregister drops one registration of ts.
func (s *SnapshotRegistry) Unregister(ts uint64) {
	s.mu.Lock()
	if n := s.active[ts]; n <= 1 {
		delete(s.active, ts)
	} else {
		s.active[ts] = n - 1
	}
	s.mu.Unlock()
}

// MinActive returns the oldest registered snapshot, or math.MaxUint64
// when none are active (everything older than "now" is reclaimable).
func (s *SnapshotRegistry) MinActive() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	min := uint64(math.MaxUint64)
	for ts := range s.active {
		if ts < min {
			min = ts
		}
	}
	return min
}

// ActiveCount returns the number of distinct registered snapshots (tests).
func (s *SnapshotRegistry) ActiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}
