package txn

import (
	"math"
	"sync"
	"sync/atomic"
)

// snapShards stripes the registry; registrations are spread round-robin
// so concurrent Begin/finish pairs rarely contend on the same mutex.
// Must be a power of two.
const snapShards = 16

// snapShard is one stripe. The padding keeps adjacent shards' mutexes
// off the same cache line.
type snapShard struct {
	mu     sync.Mutex
	active map[uint64]int // snapshot ts -> refcount
	_      [104]byte
}

// SnapshotRegistry tracks the snapshot timestamps of active statements
// and transactions. IMRS-GC may only reclaim a row version once no
// active snapshot can still read it; the paper calls the equivalent
// shield for lock-free scanners "statement registration" (Section
// VII-B). Every transaction registers at Begin and unregisters at
// finish, so the registry is striped: Register/Unregister touch a single
// shard, while the rare MinActive (GC cycles) locks all shards for a
// consistent view.
type SnapshotRegistry struct {
	shards [snapShards]snapShard
	next   atomic.Uint32 // round-robin shard cursor
}

// SnapshotRef identifies one registration; pass it back to Unregister.
type SnapshotRef struct {
	ts    uint64
	shard uint32
}

// TS returns the registered snapshot timestamp.
func (r SnapshotRef) TS() uint64 { return r.ts }

// NewSnapshotRegistry returns an empty registry.
func NewSnapshotRegistry() *SnapshotRegistry {
	s := &SnapshotRegistry{}
	for i := range s.shards {
		s.shards[i].active = make(map[uint64]int)
	}
	return s
}

// Register records an active snapshot at ts. The caller must Unregister
// the returned ref exactly once.
func (s *SnapshotRegistry) Register(ts uint64) SnapshotRef {
	i := s.next.Add(1) & (snapShards - 1)
	sh := &s.shards[i]
	sh.mu.Lock()
	sh.active[ts]++
	sh.mu.Unlock()
	return SnapshotRef{ts: ts, shard: i}
}

// Unregister drops one registration.
func (s *SnapshotRegistry) Unregister(ref SnapshotRef) {
	sh := &s.shards[ref.shard&(snapShards-1)]
	sh.mu.Lock()
	if n := sh.active[ref.ts]; n <= 1 {
		delete(sh.active, ref.ts)
	} else {
		sh.active[ref.ts] = n - 1
	}
	sh.mu.Unlock()
}

// MinActive returns the oldest registered snapshot, or math.MaxUint64
// when none are active (everything older than "now" is reclaimable).
// All shards are locked together so the view is consistent.
func (s *SnapshotRegistry) MinActive() uint64 {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	min := uint64(math.MaxUint64)
	for i := range s.shards {
		for ts := range s.shards[i].active {
			if ts < min {
				min = ts
			}
		}
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	return min
}

// ActiveCount returns the number of distinct registered snapshot
// timestamps (tests).
func (s *SnapshotRegistry) ActiveCount() int {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	distinct := make(map[uint64]struct{})
	for i := range s.shards {
		for ts := range s.shards[i].active {
			distinct[ts] = struct{}{}
		}
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	return len(distinct)
}
