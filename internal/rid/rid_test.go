package rid

import (
	"testing"
	"testing/quick"
)

func TestPhysicalRoundTrip(t *testing.T) {
	r := NewPhysical(7, 123456, 42)
	if r.IsVirtual() {
		t.Fatalf("physical RID reports virtual")
	}
	if got := r.Partition(); got != 7 {
		t.Errorf("Partition() = %d, want 7", got)
	}
	if got := r.Page(); got != 123456 {
		t.Errorf("Page() = %d, want 123456", got)
	}
	if got := r.Slot(); got != 42 {
		t.Errorf("Slot() = %d, want 42", got)
	}
}

func TestVirtualRoundTrip(t *testing.T) {
	r := NewVirtual(15, 0xABCDEF012345)
	if !r.IsVirtual() {
		t.Fatalf("virtual RID reports physical")
	}
	if got := r.Partition(); got != 15 {
		t.Errorf("Partition() = %d, want 15", got)
	}
	if got := r.Seq(); got != 0xABCDEF012345 {
		t.Errorf("Seq() = %x, want abcdef012345", got)
	}
}

func TestPhysicalRoundTripProperty(t *testing.T) {
	f := func(part uint16, page uint32, slot uint16) bool {
		p := PartitionID(part & 0x7FFF)
		r := NewPhysical(p, PageID(page), slot)
		return !r.IsVirtual() && r.Partition() == p && r.Page() == PageID(page) && r.Slot() == slot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualRoundTripProperty(t *testing.T) {
	f := func(part uint16, seq uint64) bool {
		p := PartitionID(part & 0x7FFF)
		s := seq & 0xFFFFFFFFFFFF
		r := NewVirtual(p, s)
		return r.IsVirtual() && r.Partition() == p && r.Seq() == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctness(t *testing.T) {
	// A virtual RID and a physical RID with coincident bits must differ.
	v := NewVirtual(1, 5)
	p := NewPhysical(1, 0, 5)
	if v == p {
		t.Fatalf("virtual and physical RIDs collide: %v vs %v", v, p)
	}
}

func TestStringForms(t *testing.T) {
	if s := Zero.String(); s != "rid(0)" {
		t.Errorf("Zero.String() = %q", s)
	}
	if s := NewPhysical(1, 2, 3).String(); s != "rid(p1:pg2:s3)" {
		t.Errorf("physical String() = %q", s)
	}
	if s := NewVirtual(1, 9).String(); s != "vrid(p1:9)" {
		t.Errorf("virtual String() = %q", s)
	}
}
