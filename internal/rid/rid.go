// Package rid defines row identifiers (RIDs) used across the engine.
//
// A RID names a row location. Rows that live in the page store are
// addressed by (partition, page, slot). Rows first inserted into the IMRS
// have no page-store footprint yet; they receive a *virtual* RID drawn
// from a per-partition sequence, distinguished by the high bit of the
// page number. When such a row is later packed to the page store, its
// index entries are rewritten to the new physical RID (a logged delete
// from the IMRS plus a logged insert into the page store, as in the
// paper's Pack operation).
package rid

import "fmt"

// PartitionID identifies a data partition (the entire table for an
// unpartitioned table, per the paper's Section V convention).
type PartitionID uint32

// PageID identifies a page within the database's page space.
type PageID uint32

// InvalidPage is a PageID that never names a real page.
const InvalidPage PageID = 0xFFFFFFFF

// virtualBit marks RIDs allocated for IMRS-only (not yet packed) rows.
const virtualBit uint64 = 1 << 63

// RID is a packed row identifier: partition (high 32 bits below the
// virtual bit are split between partition and page), page, and slot.
//
// Layout (physical): [1 bit virtual=0][15 bits partition][32 bits page][16 bits slot]
// Layout (virtual):  [1 bit virtual=1][15 bits partition][48 bits sequence]
type RID uint64

// NewPhysical builds the RID of a page-store row.
func NewPhysical(part PartitionID, page PageID, slot uint16) RID {
	return RID(uint64(part&0x7FFF)<<48 | uint64(page)<<16 | uint64(slot))
}

// NewVirtual builds the RID of an IMRS-resident row that has no
// page-store location yet. seq must fit in 48 bits.
func NewVirtual(part PartitionID, seq uint64) RID {
	return RID(virtualBit | uint64(part&0x7FFF)<<48 | (seq & 0xFFFFFFFFFFFF))
}

// IsVirtual reports whether r names an IMRS-only row.
func (r RID) IsVirtual() bool { return uint64(r)&virtualBit != 0 }

// Partition returns the partition component of r.
func (r RID) Partition() PartitionID {
	return PartitionID(uint64(r) >> 48 & 0x7FFF)
}

// Page returns the page component of a physical RID.
func (r RID) Page() PageID { return PageID(uint64(r) >> 16 & 0xFFFFFFFF) }

// Slot returns the slot component of a physical RID.
func (r RID) Slot() uint16 { return uint16(uint64(r) & 0xFFFF) }

// Seq returns the sequence component of a virtual RID.
func (r RID) Seq() uint64 { return uint64(r) & 0xFFFFFFFFFFFF }

// Zero is the invalid RID.
const Zero RID = 0

// String implements fmt.Stringer.
func (r RID) String() string {
	if r == Zero {
		return "rid(0)"
	}
	if r.IsVirtual() {
		return fmt.Sprintf("vrid(p%d:%d)", r.Partition(), r.Seq())
	}
	return fmt.Sprintf("rid(p%d:pg%d:s%d)", r.Partition(), r.Page(), r.Slot())
}
