package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sql"
)

// Config bounds a server's resource use. The zero value imposes no
// limits (the pre-existing behavior).
type Config struct {
	// MaxConns caps concurrent connections; further connections are
	// rejected at accept with a single retryable over-capacity error
	// frame. 0 = unlimited.
	MaxConns int
	// StatementTimeout bounds each statement's execution; an expired
	// statement fails with sql.ErrDeadlineExceeded (retryable on the
	// wire) and, inside an explicit transaction, aborts it like any
	// other statement failure. 0 = none.
	StatementTimeout time.Duration
	// IdleTimeout reaps connections that send nothing for this long;
	// any open transaction is aborted, exactly as on client hangup.
	// 0 = never.
	IdleTimeout time.Duration
	// DisablePlanCache builds every session with its transparent plan
	// cache off — the benchmark's negative control for pricing the
	// front end; never useful in production.
	DisablePlanCache bool
}

// Server serves the wire protocol over one engine: one goroutine, one
// connection, one sql.Session each, so every client gets its own
// transaction state while all of them share the engine's snapshot
// isolation and group-commit pipelines.
type Server struct {
	eng sql.Engine
	cfg Config

	mu       sync.Mutex
	ln       net.Listener
	sessions map[int64]*session
	draining bool

	wg     sync.WaitGroup
	nextID atomic.Int64

	// Aggregate counters, rolled up into Stats alongside the engine's
	// own statistics.
	totalSessions   atomic.Int64
	statements      atomic.Int64
	rowsReturned    atomic.Int64
	commits         atomic.Int64
	rollbacks       atomic.Int64
	errors          atomic.Int64
	drainAborts     atomic.Int64
	overCapacity    atomic.Int64
	idleReaps       atomic.Int64
	panicRecoveries atomic.Int64
	oversizedFrames atomic.Int64

	// Pipelining counters: batch frames served, statements carried in
	// them, statements skipped after a mid-batch failure, and a
	// power-of-two histogram of statements per frame.
	batchFrames  atomic.Int64
	batchedStmts atomic.Int64
	skippedStmts atomic.Int64
	batchHist    [batchHistBuckets]atomic.Int64

	// Front-end plan-cache rollup, accumulated as deltas from each
	// connection's sql.SessionStats by its own handler goroutine (the
	// session itself is single-goroutine and must not be read directly
	// from Stats).
	planHits          atomic.Int64
	planMisses        atomic.Int64
	planEvictions     atomic.Int64
	planInvalidations atomic.Int64
	preparedExecs     atomic.Int64
}

// batchHistBuckets sizes the statements-per-frame histogram: bucket i
// counts frames of 2^i .. 2^(i+1)-1 statements, the last bucket is
// open-ended.
const batchHistBuckets = 8

func histBucket(n int) int {
	b := bits.Len(uint(n)) - 1
	if b >= batchHistBuckets {
		b = batchHistBuckets - 1
	}
	return b
}

type session struct {
	id     int64
	remote string
	conn   net.Conn
	sess   *sql.Session
	stmts  atomic.Int64
	inTxn  atomic.Bool
	// lastSQL is the previous sql.SessionStats snapshot, used to push
	// deltas into the server rollup. Handler goroutine only.
	lastSQL sql.SessionStats
	// msgs is the batch-decode scratch, recycled frame to frame.
	// Handler goroutine only.
	msgs []batchMsg
}

// rollup pushes the session's front-end counter growth since the last
// snapshot into the server-wide atomics. Called by the handler goroutine
// after each frame and once more at teardown, so closed sessions keep
// counting.
func (s *Server) rollup(c *session) {
	st := c.sess.Stats()
	s.planHits.Add(int64(st.CacheHits - c.lastSQL.CacheHits))
	s.planMisses.Add(int64(st.CacheMisses - c.lastSQL.CacheMisses))
	s.planEvictions.Add(int64(st.CacheEvictions - c.lastSQL.CacheEvictions))
	s.planInvalidations.Add(int64(st.CacheInvalidations - c.lastSQL.CacheInvalidations))
	s.preparedExecs.Add(int64(st.PreparedExecs - c.lastSQL.PreparedExecs))
	c.lastSQL = st
}

// New builds an unlimited server over eng (sql.WrapDB or
// sql.WrapSharded).
func New(eng sql.Engine) *Server { return NewWithConfig(eng, Config{}) }

// NewWithConfig builds a server with admission control and deadlines.
func NewWithConfig(eng sql.Engine, cfg Config) *Server {
	return &Server{eng: eng, cfg: cfg, sessions: make(map[int64]*session)}
}

// Serve accepts connections on ln until Shutdown. It returns nil after
// a clean drain.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrShutdown
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		if s.cfg.MaxConns > 0 && len(s.sessions) >= s.cfg.MaxConns {
			s.mu.Unlock()
			s.overCapacity.Add(1)
			// Answer the client's first statement with a retryable
			// over-capacity error, then close. Off the accept loop so a
			// slow or absent reader cannot stall admission.
			go rejectOverCapacity(conn)
			continue
		}
		id := s.nextID.Add(1)
		sess := sql.NewSession(s.eng)
		if s.cfg.DisablePlanCache {
			sess.DisablePlanCache()
		}
		c := &session{id: id, remote: conn.RemoteAddr().String(), conn: conn, sess: sess}
		s.sessions[id] = c
		s.mu.Unlock()
		s.totalSessions.Add(1)
		s.wg.Add(1)
		go s.handle(c)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (once Serve has been called).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// rejectOverCapacity answers an over-limit connection's first
// statement with one retryable error frame and closes it, bounded by a
// deadline so a dead peer cannot pin the goroutine. The request is read
// before answering: responding first and closing would race the
// client's write against the close and could turn the typed error into
// a connection reset.
func rejectOverCapacity(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFrame(bufio.NewReader(conn), nil); err != nil && !errors.Is(err, ErrFrameTooLarge) {
		return
	}
	bw := bufio.NewWriter(conn)
	if err := writeFrame(bw, encodeResponse(nil, nil, ErrOverCapacity)); err == nil {
		bw.Flush()
	}
}

// handle runs one connection's request loop.
func (s *Server) handle(c *session) {
	defer s.wg.Done()
	defer func() {
		// A handler panic must not take the whole server down: recover,
		// count it, and fall through to the connection teardown below.
		if r := recover(); r != nil {
			s.panicRecoveries.Add(1)
		}
		// A connection that ends — client hangup or server drain — must
		// leave no transaction behind: Close aborts any open block, so
		// uncommitted work vanishes atomically.
		if c.sess.InTxn() {
			s.drainAborts.Add(1)
		}
		s.rollup(c)
		c.sess.Close()
		c.conn.Close()
		s.mu.Lock()
		delete(s.sessions, c.id)
		s.mu.Unlock()
	}()

	br := bufio.NewReaderSize(c.conn, 64<<10)
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	var inBuf, outBuf []byte
	for {
		if s.cfg.IdleTimeout > 0 {
			c.conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		req, err := readFrame(br, inBuf)
		switch {
		case err == nil:
			inBuf = req
		case errors.Is(err, ErrFrameTooLarge):
			// The oversized payload was drained; answer with a typed
			// error and keep serving this connection.
			s.oversizedFrames.Add(1)
			req = nil
		default:
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.idleReaps.Add(1)
			}
			return // EOF, client reset, idle reap, or drain closing the conn
		}

		if err == nil && len(req) > 0 && req[0] == batchMagic {
			outBuf = s.executeBatch(c, req, outBuf)
		} else {
			var res *sql.Result
			execErr := err
			if execErr == nil {
				res, execErr = s.execute(c, string(req))
			}
			outBuf = encodeResponse(outBuf, res, execErr)
		}
		s.rollup(c)
		if len(outBuf) > MaxFrame {
			// A result too large to frame becomes a clean error instead
			// of a write-side failure that kills the connection.
			s.oversizedFrames.Add(1)
			outBuf = encodeResponse(outBuf, nil, fmt.Errorf("server: result of %d bytes: %w", len(outBuf), ErrFrameTooLarge))
		}
		if err := writeFrame(bw, outBuf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// execute runs one statement for a session and maintains the rollup
// counters.
func (s *Server) execute(c *session, stmtText string) (*sql.Result, error) {
	return s.executeFn(c, func() (*sql.Result, error) { return c.sess.Exec(stmtText) })
}

// executeFn runs one session operation under the per-statement guard:
// deadline re-armed from the configured timeout, panics converted to a
// typed internal error with the session reset, counters maintained.
// Every message of a batch frame passes through here individually, so a
// pipelined statement gets the same deadline budget as one sent alone.
func (s *Server) executeFn(c *session, fn func() (*sql.Result, error)) (res *sql.Result, err error) {
	s.statements.Add(1)
	c.stmts.Add(1)
	// A statement that panics is isolated to this session: the panic is
	// converted into a typed internal error, and the session is reset
	// (open transaction aborted) because its state machine can no longer
	// be trusted mid-statement.
	defer func() {
		if r := recover(); r != nil {
			s.panicRecoveries.Add(1)
			s.errors.Add(1)
			c.sess.Reset()
			c.inTxn.Store(false)
			res, err = nil, fmt.Errorf("%w: statement panicked: %v", ErrInternal, r)
		}
	}()
	if s.cfg.StatementTimeout > 0 {
		c.sess.SetStatementDeadline(time.Now().Add(s.cfg.StatementTimeout))
	}
	res, err = fn()
	c.inTxn.Store(c.sess.InTxn())
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	switch res.Msg {
	case "COMMIT":
		s.commits.Add(1)
	case "ROLLBACK":
		s.rollbacks.Add(1)
	}
	s.rowsReturned.Add(int64(len(res.Rows)))
	return res, nil
}

// executeMsg dispatches one batch message to the session.
func (s *Server) executeMsg(c *session, m *batchMsg) (*sql.Result, error) {
	switch m.kind {
	case msgSQL:
		return s.execute(c, m.sql)
	case msgPrepare:
		return s.executeFn(c, func() (*sql.Result, error) {
			n, err := c.sess.Prepare(m.name, m.sql)
			if err != nil {
				return nil, err
			}
			return &sql.Result{Msg: "PREPARE", Affected: int64(n)}, nil
		})
	case msgBind:
		return s.executeFn(c, func() (*sql.Result, error) {
			return c.sess.ExecPrepared(m.name, m.args)
		})
	case msgDeallocate:
		return s.executeFn(c, func() (*sql.Result, error) {
			if err := c.sess.Deallocate(m.name); err != nil {
				return nil, err
			}
			return &sql.Result{Msg: "DEALLOCATE"}, nil
		})
	default:
		return nil, fmt.Errorf("server: bad batch message kind %q", m.kind)
	}
}

// executeBatch serves one pipelined frame: messages run in order, the
// first failure stops execution, and every later message answers with a
// typed skipped error so the response count always matches the request
// count and the stream stays frame-aligned.
func (s *Server) executeBatch(c *session, req, out []byte) []byte {
	msgs, err := decodeBatch(req, c.msgs)
	if msgs != nil {
		c.msgs = msgs
	}
	if err != nil {
		// A frame that cannot be parsed gets a single error response:
		// the client knows its batch produced no sub-results.
		s.errors.Add(1)
		return encodeResponse(out, nil, err)
	}
	s.batchFrames.Add(1)
	s.batchedStmts.Add(int64(len(msgs)))
	s.batchHist[histBucket(len(msgs))].Add(1)

	out = append(out[:0], tagMulti)
	out = binary.AppendUvarint(out, uint64(len(msgs)))
	var sub []byte
	failed := false
	for i := range msgs {
		var res *sql.Result
		var err error
		if failed {
			s.skippedStmts.Add(1)
			err = ErrStmtSkipped
		} else if res, err = s.executeMsg(c, &msgs[i]); err != nil {
			failed = true
		}
		sub = encodeResponse(sub, res, err)
		out = binary.AppendUvarint(out, uint64(len(sub)))
		out = append(out, sub...)
	}
	return out
}

// Shutdown drains the server: stop accepting, close every connection
// (which aborts each session's open transaction cleanly — committed
// work stays, uncommitted work vanishes), and wait for the handlers to
// exit or ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	conns := make([]*session, 0, len(s.sessions))
	for _, c := range s.sessions {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.conn.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain incomplete: %w", ctx.Err())
	}
}

// Stats is the server-side rollup: aggregate counters plus one row per
// live session, reported next to the engine's own statistics.
type Stats struct {
	ActiveSessions int
	TotalSessions  int64
	Statements     int64
	RowsReturned   int64
	Commits        int64
	Rollbacks      int64
	Errors         int64
	DrainAborts    int64 // sessions whose open txn was aborted at disconnect
	// Robustness counters: connections rejected at the MaxConns limit,
	// idle connections reaped, statement panics converted to typed
	// errors, and oversized frames survived (both directions).
	OverCapacityRejects int64
	IdleReaps           int64
	PanicRecoveries     int64
	OversizedFrames     int64
	// Pipelining: batch frames served, statements carried inside them,
	// statements skipped after a mid-batch failure, and frames by
	// statement count (bucket i counts frames of 2^i..2^(i+1)-1
	// statements; the last bucket is open-ended).
	BatchFrames       int64
	BatchedStatements int64
	SkippedStatements int64
	BatchSizes        [batchHistBuckets]int64
	// Front-end plan cache, aggregated across all sessions including
	// closed ones.
	PlanCacheHits          int64
	PlanCacheMisses        int64
	PlanCacheEvictions     int64
	PlanCacheInvalidations int64
	PreparedExecs          int64
	Sessions               []SessionStats
}

// SessionStats describes one live session.
type SessionStats struct {
	ID         int64
	Remote     string
	Statements int64
	InTxn      bool
}

// Stats snapshots the rollup.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		ActiveSessions:      len(s.sessions),
		TotalSessions:       s.totalSessions.Load(),
		Statements:          s.statements.Load(),
		RowsReturned:        s.rowsReturned.Load(),
		Commits:             s.commits.Load(),
		Rollbacks:           s.rollbacks.Load(),
		Errors:              s.errors.Load(),
		DrainAborts:         s.drainAborts.Load(),
		OverCapacityRejects: s.overCapacity.Load(),
		IdleReaps:           s.idleReaps.Load(),
		PanicRecoveries:     s.panicRecoveries.Load(),
		OversizedFrames:     s.oversizedFrames.Load(),

		BatchFrames:       s.batchFrames.Load(),
		BatchedStatements: s.batchedStmts.Load(),
		SkippedStatements: s.skippedStmts.Load(),

		PlanCacheHits:          s.planHits.Load(),
		PlanCacheMisses:        s.planMisses.Load(),
		PlanCacheEvictions:     s.planEvictions.Load(),
		PlanCacheInvalidations: s.planInvalidations.Load(),
		PreparedExecs:          s.preparedExecs.Load(),
	}
	for i := range s.batchHist {
		st.BatchSizes[i] = s.batchHist[i].Load()
	}
	for _, c := range s.sessions {
		st.Sessions = append(st.Sessions, SessionStats{
			ID: c.id, Remote: c.remote, Statements: c.stmts.Load(), InTxn: c.inTxn.Load(),
		})
	}
	s.mu.Unlock()
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].ID < st.Sessions[j].ID })
	return st
}
