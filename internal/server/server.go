package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sql"
)

// Server serves the wire protocol over one engine: one goroutine, one
// connection, one sql.Session each, so every client gets its own
// transaction state while all of them share the engine's snapshot
// isolation and group-commit pipelines.
type Server struct {
	eng sql.Engine

	mu       sync.Mutex
	ln       net.Listener
	sessions map[int64]*session
	draining bool

	wg     sync.WaitGroup
	nextID atomic.Int64

	// Aggregate counters, rolled up into Stats alongside the engine's
	// own statistics.
	totalSessions atomic.Int64
	statements    atomic.Int64
	rowsReturned  atomic.Int64
	commits       atomic.Int64
	rollbacks     atomic.Int64
	errors        atomic.Int64
	drainAborts   atomic.Int64
}

type session struct {
	id     int64
	remote string
	conn   net.Conn
	sess   *sql.Session
	stmts  atomic.Int64
	inTxn  atomic.Bool
}

// New builds a server over eng (sql.WrapDB or sql.WrapSharded).
func New(eng sql.Engine) *Server {
	return &Server{eng: eng, sessions: make(map[int64]*session)}
}

// Serve accepts connections on ln until Shutdown. It returns nil after
// a clean drain.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrShutdown
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		id := s.nextID.Add(1)
		c := &session{id: id, remote: conn.RemoteAddr().String(), conn: conn, sess: sql.NewSession(s.eng)}
		s.sessions[id] = c
		s.mu.Unlock()
		s.totalSessions.Add(1)
		s.wg.Add(1)
		go s.handle(c)
	}
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener address (once Serve has been called).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// handle runs one connection's request loop.
func (s *Server) handle(c *session) {
	defer s.wg.Done()
	defer func() {
		// A connection that ends — client hangup or server drain — must
		// leave no transaction behind: Close aborts any open block, so
		// uncommitted work vanishes atomically.
		if c.sess.InTxn() {
			s.drainAborts.Add(1)
		}
		c.sess.Close()
		c.conn.Close()
		s.mu.Lock()
		delete(s.sessions, c.id)
		s.mu.Unlock()
	}()

	br := bufio.NewReaderSize(c.conn, 64<<10)
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	var inBuf, outBuf []byte
	for {
		req, err := readFrame(br, inBuf)
		if err != nil {
			return // EOF, client reset, or drain closing the conn
		}
		inBuf = req

		res, execErr := s.execute(c, string(req))
		outBuf = encodeResponse(outBuf, res, execErr)
		if err := writeFrame(bw, outBuf); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// execute runs one statement for a session and maintains the rollup
// counters.
func (s *Server) execute(c *session, stmtText string) (*sql.Result, error) {
	s.statements.Add(1)
	c.stmts.Add(1)
	res, err := c.sess.Exec(stmtText)
	c.inTxn.Store(c.sess.InTxn())
	if err != nil {
		s.errors.Add(1)
		return nil, err
	}
	switch res.Msg {
	case "COMMIT":
		s.commits.Add(1)
	case "ROLLBACK":
		s.rollbacks.Add(1)
	}
	s.rowsReturned.Add(int64(len(res.Rows)))
	return res, nil
}

// Shutdown drains the server: stop accepting, close every connection
// (which aborts each session's open transaction cleanly — committed
// work stays, uncommitted work vanishes), and wait for the handlers to
// exit or ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	conns := make([]*session, 0, len(s.sessions))
	for _, c := range s.sessions {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.conn.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain incomplete: %w", ctx.Err())
	}
}

// Stats is the server-side rollup: aggregate counters plus one row per
// live session, reported next to the engine's own statistics.
type Stats struct {
	ActiveSessions int
	TotalSessions  int64
	Statements     int64
	RowsReturned   int64
	Commits        int64
	Rollbacks      int64
	Errors         int64
	DrainAborts    int64 // sessions whose open txn was aborted at disconnect
	Sessions       []SessionStats
}

// SessionStats describes one live session.
type SessionStats struct {
	ID         int64
	Remote     string
	Statements int64
	InTxn      bool
}

// Stats snapshots the rollup.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		ActiveSessions: len(s.sessions),
		TotalSessions:  s.totalSessions.Load(),
		Statements:     s.statements.Load(),
		RowsReturned:   s.rowsReturned.Load(),
		Commits:        s.commits.Load(),
		Rollbacks:      s.rollbacks.Load(),
		Errors:         s.errors.Load(),
		DrainAborts:    s.drainAborts.Load(),
	}
	for _, c := range s.sessions {
		st.Sessions = append(st.Sessions, SessionStats{
			ID: c.id, Remote: c.remote, Statements: c.stmts.Load(), InTxn: c.inTxn.Load(),
		})
	}
	s.mu.Unlock()
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].ID < st.Sessions[j].ID })
	return st
}
