package server

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/btrim"
	"repro/internal/sql"
)

// startServer runs a server over a fresh in-memory database and returns
// its address plus the server handle.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	db, err := btrim.Open(btrim.Config{IMRSCacheBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return startServerOver(t, sql.WrapDB(db))
}

func startServerOver(t *testing.T, eng sql.Engine) (*Server, string) {
	t.Helper()
	srv := New(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		select {
		case err := <-served:
			if err != nil {
				t.Errorf("Serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Shutdown")
		}
	})
	return srv, ln.Addr().String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func clientExec(t *testing.T, c *Client, stmts ...string) *sql.Result {
	t.Helper()
	var last *sql.Result
	for _, stmt := range stmts {
		res, err := c.Exec(stmt)
		if err != nil {
			t.Fatalf("exec %q: %v", stmt, err)
		}
		last = res
	}
	return last
}

func TestServerEndToEnd(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)

	clientExec(t, c,
		`CREATE TABLE users (id INT, name STRING, score FLOAT, PRIMARY KEY (id))`,
		`INSERT INTO users VALUES (1, 'ada', 99.5), (2, 'grace', 88)`,
	)
	res := clientExec(t, c, `SELECT name, score FROM users WHERE id = 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "ada" || res.Rows[0][1].Float() != 99.5 {
		t.Fatalf("point select over wire = %+v", res.Rows)
	}
	res = clientExec(t, c, `SELECT id FROM users WHERE score > 0`)
	if len(res.Rows) != 2 {
		t.Fatalf("range select over wire = %+v", res.Rows)
	}
	res = clientExec(t, c, `UPDATE users SET score = score + 1 WHERE id = 2`)
	if res.Affected != 1 {
		t.Fatalf("update affected = %d", res.Affected)
	}
	res = clientExec(t, c, `DELETE FROM users WHERE id = 1`)
	if res.Affected != 1 {
		t.Fatalf("delete affected = %d", res.Affected)
	}

	st := srv.Stats()
	if st.ActiveSessions != 1 || st.TotalSessions != 1 || st.Statements < 6 {
		t.Fatalf("stats = %+v", st)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].Statements < 6 {
		t.Fatalf("session stats = %+v", st.Sessions)
	}
}

func TestServerTypedErrors(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	clientExec(t, c,
		`CREATE TABLE t (a INT, PRIMARY KEY (a))`,
		`INSERT INTO t VALUES (1)`,
	)
	if _, err := c.Exec(`INSERT INTO t VALUES (1)`); !errors.Is(err, btrim.ErrDuplicateKey) {
		t.Fatalf("duplicate key over wire: %v", err)
	}
	if _, err := c.Exec(`COMMIT`); !errors.Is(err, sql.ErrNoTxn) {
		t.Fatalf("stray COMMIT over wire: %v", err)
	}

	// Abort the txn server-side, check the typed aborted error crosses
	// the wire on the next statement.
	clientExec(t, c, `BEGIN`)
	if _, err := c.Exec(`INSERT INTO t VALUES (1)`); !errors.Is(err, btrim.ErrDuplicateKey) {
		t.Fatalf("dup in txn: %v", err)
	}
	if _, err := c.Exec(`SELECT * FROM t`); !errors.Is(err, sql.ErrTxnAborted) {
		t.Fatalf("aborted txn over wire: %v", err)
	}
	clientExec(t, c, `ROLLBACK`)
	if _, err := c.Exec(`SELECT * FROM t`); err != nil {
		t.Fatalf("session unusable after rollback: %v", err)
	}
}

func TestServerSessionIsolation(t *testing.T) {
	_, addr := startServer(t)
	a, b := dial(t, addr), dial(t, addr)
	clientExec(t, a, `CREATE TABLE t (a INT, PRIMARY KEY (a))`)

	// Txn state is per session: a BEGIN on conn A does not open one on B.
	clientExec(t, a, `BEGIN`, `INSERT INTO t VALUES (1)`)
	if _, err := b.Exec(`COMMIT`); !errors.Is(err, sql.ErrNoTxn) {
		t.Fatalf("txn leaked across sessions: %v", err)
	}
	// No dirty reads: A's uncommitted insert is invisible to B.
	if res := clientExec(t, b, `SELECT * FROM t`); len(res.Rows) != 0 {
		t.Fatalf("dirty read: %+v", res.Rows)
	}
	clientExec(t, a, `COMMIT`)
	if res := clientExec(t, b, `SELECT * FROM t`); len(res.Rows) != 1 {
		t.Fatalf("committed row invisible: %+v", res.Rows)
	}
}

// TestServerDisconnectAbortsTxn: a client that drops mid-transaction
// must leave nothing behind.
func TestServerDisconnectAbortsTxn(t *testing.T) {
	srv, addr := startServer(t)
	a := dial(t, addr)
	clientExec(t, a, `CREATE TABLE t (a INT, PRIMARY KEY (a))`)

	b := dial(t, addr)
	clientExec(t, b, `BEGIN`, `INSERT INTO t VALUES (42)`)
	_ = b.Close()

	// Wait for the server to reap the session.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ActiveSessions > 1 {
		if time.Now().After(deadline) {
			t.Fatal("session not reaped after disconnect")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if res := clientExec(t, a, `SELECT * FROM t`); len(res.Rows) != 0 {
		t.Fatalf("disconnected txn leaked: %+v", res.Rows)
	}
	if srv.Stats().DrainAborts != 1 {
		t.Fatalf("drain aborts = %d, want 1", srv.Stats().DrainAborts)
	}
}

func TestServerShardedEngine(t *testing.T) {
	db, err := btrim.OpenSharded(btrim.Config{IMRSCacheBytes: 16 << 20, Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	_, addr := startServerOver(t, sql.WrapSharded(db))
	c := dial(t, addr)
	clientExec(t, c, `CREATE TABLE t (a INT, v STRING, PRIMARY KEY (a))`)
	for i := 0; i < 20; i += 2 {
		clientExec(t, c, `BEGIN`)
		// Adjacent keys usually land on different shards: exercises the
		// node's cross-shard 2PC underneath the SQL layer.
		if _, err := c.Exec(insertStmt(i)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec(insertStmt(i + 1)); err != nil {
			t.Fatal(err)
		}
		clientExec(t, c, `COMMIT`)
	}
	res := clientExec(t, c, `SELECT a FROM t WHERE a >= 0`)
	if len(res.Rows) != 20 {
		t.Fatalf("sharded rows = %d, want 20", len(res.Rows))
	}
}

func insertStmt(i int) string {
	return `INSERT INTO t VALUES (` + itoa(i) + `, 'v')`
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
