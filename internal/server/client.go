package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"repro/btrim"
	"repro/internal/fault"
	"repro/internal/sql"
)

// RetryableError marks a server-reported failure whose retryable bit
// was set on the wire: the statement had no durable effect and the
// condition (capacity, deadline, a shard mid-recovery, drain) is
// expected to clear. Unwrap reaches the typed sentinel; FaultTransient
// plugs it straight into internal/fault retriers.
type RetryableError struct{ Err error }

// Error implements error.
func (e *RetryableError) Error() string { return e.Err.Error() }

// Unwrap exposes the reconstructed server error.
func (e *RetryableError) Unwrap() error { return e.Err }

// FaultTransient classifies the error as transient for internal/fault.
func (e *RetryableError) FaultTransient() bool { return true }

// IsRetryable reports whether err carries the server's retryable bit.
func IsRetryable(err error) bool {
	var r *RetryableError
	return errors.As(err, &r)
}

// Client is a wire-protocol client: one TCP connection, one server-side
// session. It is not safe for concurrent use — like a session, each
// goroutine should own its own.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte
}

// Dial connects to a btrimd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// Exec sends one statement and returns its result. Typed session
// errors (sql.ErrTxnAborted, btrim.ErrDuplicateKey, ...) survive the
// round trip and match with errors.Is.
func (c *Client) Exec(stmt string) (*sql.Result, error) {
	if err := writeFrame(c.bw, []byte(stmt)); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.br, c.buf)
	if err != nil {
		return nil, err
	}
	c.buf = resp
	return decodeResponse(resp)
}

// ExecRetry runs Exec, backing off and retrying while the server
// reports retryable failures. Transport errors (broken connection,
// short read) are permanent — the stream state is unknown, so the
// caller must redial — and so is every error without the retryable
// bit. The zero policy takes the fault-package defaults; statements
// retried this way must be safe to re-issue (the retryable classes all
// guarantee the failed attempt had no durable effect).
func (c *Client) ExecRetry(stmt string, p fault.Policy) (*sql.Result, error) {
	r := fault.NewRetrier(p)
	var res *sql.Result
	err := r.Do(func() error {
		var err error
		res, err = c.Exec(stmt)
		return err // *RetryableError already classifies as transient
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Close closes the connection; the server aborts any open transaction.
func (c *Client) Close() error { return c.conn.Close() }

// StmtResult is one statement's outcome inside a batch: exactly one of
// Res and Err is set. After a mid-batch failure the failed statement
// carries its real error and every later one carries ErrStmtSkipped.
type StmtResult struct {
	Res *sql.Result
	Err error
}

// Pipeline accumulates statements to send in one request frame — one
// round trip for the whole batch instead of one per statement. Queue
// methods never touch the network; Run sends the frame and returns one
// StmtResult per queued message, in order. Like the Client it belongs
// to, a Pipeline is single-goroutine.
type Pipeline struct {
	c       *Client
	n       int
	buf     []byte // encoded messages, headerless
	payload []byte // frame scratch, reused across Runs
}

// Pipeline starts an empty batch on this connection.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Queue adds one SQL statement.
func (p *Pipeline) Queue(stmt string) *Pipeline {
	p.buf = appendBatchMsg(p.buf, &batchMsg{kind: msgSQL, sql: stmt})
	p.n++
	return p
}

// QueuePrepare adds a PREPARE of text under name.
func (p *Pipeline) QueuePrepare(name, text string) *Pipeline {
	p.buf = appendBatchMsg(p.buf, &batchMsg{kind: msgPrepare, name: name, sql: text})
	p.n++
	return p
}

// QueueExecute adds an execution of a prepared statement with typed
// bind arguments — no literal quoting, no re-parse on the server.
func (p *Pipeline) QueueExecute(name string, args ...btrim.Value) *Pipeline {
	p.buf = appendBatchMsg(p.buf, &batchMsg{kind: msgBind, name: name, args: args})
	p.n++
	return p
}

// QueueDeallocate adds a DEALLOCATE of name.
func (p *Pipeline) QueueDeallocate(name string) *Pipeline {
	p.buf = appendBatchMsg(p.buf, &batchMsg{kind: msgDeallocate, name: name})
	p.n++
	return p
}

// Len reports the number of queued statements.
func (p *Pipeline) Len() int { return p.n }

// Run sends the batch and decodes its per-statement results, then
// resets the pipeline for reuse. A transport or framing error is
// returned as the single error (the per-statement results are unknown —
// the caller must redial); statement failures come back inside the
// StmtResults.
func (p *Pipeline) Run() ([]StmtResult, error) {
	if p.n == 0 {
		return nil, nil
	}
	payload := append(p.payload[:0], batchMagic)
	payload = binary.AppendUvarint(payload, uint64(p.n))
	payload = append(payload, p.buf...)
	p.payload = payload
	want := p.n
	p.n, p.buf = 0, p.buf[:0]

	c := p.c
	if err := writeFrame(c.bw, payload); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.br, c.buf)
	if err != nil {
		return nil, err
	}
	c.buf = resp
	return decodeMulti(resp, want)
}

// decodeMulti splits a 'M' response into per-statement results. A
// single-response frame (the server could not parse the batch, or the
// reply outgrew the frame limit) becomes the overall error.
func decodeMulti(b []byte, want int) ([]StmtResult, error) {
	if len(b) == 0 {
		return nil, io.ErrUnexpectedEOF
	}
	if b[0] != tagMulti {
		if _, err := decodeResponse(b); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("server: expected batch response, got tag %q", b[0])
	}
	b = b[1:]
	count, sz := binary.Uvarint(b)
	if sz <= 0 || count > uint64(len(b)) {
		return nil, io.ErrUnexpectedEOF
	}
	b = b[sz:]
	if int(count) != want {
		return nil, fmt.Errorf("server: batch of %d answered with %d results", want, count)
	}
	out := make([]StmtResult, 0, count)
	for i := uint64(0); i < count; i++ {
		n, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < n {
			return nil, io.ErrUnexpectedEOF
		}
		res, err := decodeResponse(b[sz : sz+int(n)])
		out = append(out, StmtResult{Res: res, Err: err})
		b = b[sz+int(n):]
	}
	return out, nil
}

// ExecBatch pipelines plain SQL statements in one round trip. See
// Pipeline for the prepared-statement form.
func (c *Client) ExecBatch(stmts ...string) ([]StmtResult, error) {
	p := c.Pipeline()
	for _, s := range stmts {
		p.Queue(s)
	}
	return p.Run()
}
