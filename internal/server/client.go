package server

import (
	"bufio"
	"errors"
	"net"

	"repro/internal/fault"
	"repro/internal/sql"
)

// RetryableError marks a server-reported failure whose retryable bit
// was set on the wire: the statement had no durable effect and the
// condition (capacity, deadline, a shard mid-recovery, drain) is
// expected to clear. Unwrap reaches the typed sentinel; FaultTransient
// plugs it straight into internal/fault retriers.
type RetryableError struct{ Err error }

// Error implements error.
func (e *RetryableError) Error() string { return e.Err.Error() }

// Unwrap exposes the reconstructed server error.
func (e *RetryableError) Unwrap() error { return e.Err }

// FaultTransient classifies the error as transient for internal/fault.
func (e *RetryableError) FaultTransient() bool { return true }

// IsRetryable reports whether err carries the server's retryable bit.
func IsRetryable(err error) bool {
	var r *RetryableError
	return errors.As(err, &r)
}

// Client is a wire-protocol client: one TCP connection, one server-side
// session. It is not safe for concurrent use — like a session, each
// goroutine should own its own.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte
}

// Dial connects to a btrimd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// Exec sends one statement and returns its result. Typed session
// errors (sql.ErrTxnAborted, btrim.ErrDuplicateKey, ...) survive the
// round trip and match with errors.Is.
func (c *Client) Exec(stmt string) (*sql.Result, error) {
	if err := writeFrame(c.bw, []byte(stmt)); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.br, c.buf)
	if err != nil {
		return nil, err
	}
	c.buf = resp
	return decodeResponse(resp)
}

// ExecRetry runs Exec, backing off and retrying while the server
// reports retryable failures. Transport errors (broken connection,
// short read) are permanent — the stream state is unknown, so the
// caller must redial — and so is every error without the retryable
// bit. The zero policy takes the fault-package defaults; statements
// retried this way must be safe to re-issue (the retryable classes all
// guarantee the failed attempt had no durable effect).
func (c *Client) ExecRetry(stmt string, p fault.Policy) (*sql.Result, error) {
	r := fault.NewRetrier(p)
	var res *sql.Result
	err := r.Do(func() error {
		var err error
		res, err = c.Exec(stmt)
		return err // *RetryableError already classifies as transient
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Close closes the connection; the server aborts any open transaction.
func (c *Client) Close() error { return c.conn.Close() }
