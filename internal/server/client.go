package server

import (
	"bufio"
	"net"

	"repro/internal/sql"
)

// Client is a wire-protocol client: one TCP connection, one server-side
// session. It is not safe for concurrent use — like a session, each
// goroutine should own its own.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte
}

// Dial connects to a btrimd server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 64<<10),
		bw:   bufio.NewWriterSize(conn, 64<<10),
	}
}

// Exec sends one statement and returns its result. Typed session
// errors (sql.ErrTxnAborted, btrim.ErrDuplicateKey, ...) survive the
// round trip and match with errors.Is.
func (c *Client) Exec(stmt string) (*sql.Result, error) {
	if err := writeFrame(c.bw, []byte(stmt)); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resp, err := readFrame(c.br, c.buf)
	if err != nil {
		return nil, err
	}
	c.buf = resp
	return decodeResponse(resp)
}

// Close closes the connection; the server aborts any open transaction.
func (c *Client) Close() error { return c.conn.Close() }
