package server

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/btrim"
	"repro/internal/sql"
)

func TestPipelineRoundTrip(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)

	// Everything from CREATE to the final SELECT in one frame.
	results, err := c.ExecBatch(
		`CREATE TABLE kv (k INT, v STRING, PRIMARY KEY (k))`,
		`INSERT INTO kv VALUES (1, 'one'), (2, 'two')`,
		`UPDATE kv SET v = 'uno' WHERE k = 1`,
		`SELECT v FROM kv WHERE k = 1`,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("statement %d: %v", i, r.Err)
		}
	}
	if results[1].Res.Affected != 2 || results[2].Res.Affected != 1 {
		t.Fatalf("affected = %d, %d", results[1].Res.Affected, results[2].Res.Affected)
	}
	if rows := results[3].Res.Rows; len(rows) != 1 || rows[0][0].Str() != "uno" {
		t.Fatalf("select in batch = %+v", rows)
	}

	st := srv.Stats()
	if st.BatchFrames != 1 || st.BatchedStatements != 4 {
		t.Fatalf("batch stats = %+v", st)
	}
	// Four statements land in the 4..7 bucket.
	if st.BatchSizes[2] != 1 {
		t.Fatalf("batch histogram = %v", st.BatchSizes)
	}
}

func TestPipelinePreparedOverWire(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	clientExec(t, c,
		`CREATE TABLE acct (id INT, bal INT, PRIMARY KEY (id))`,
		`INSERT INTO acct VALUES (1, 100), (2, 50)`,
	)

	// Prepare once, then run a transfer as one frame: typed binds, no
	// literal quoting, one round trip for the whole transaction.
	p := c.Pipeline()
	p.QueuePrepare("debit", `UPDATE acct SET bal = bal - ? WHERE id = ?`)
	p.QueuePrepare("credit", `UPDATE acct SET bal = bal + ? WHERE id = ?`)
	results, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("prepare over wire: %v / %v", results[0].Err, results[1].Err)
	}
	if results[0].Res.Msg != "PREPARE" || results[0].Res.Affected != 2 {
		t.Fatalf("prepare result = %+v, want 2 params", results[0].Res)
	}

	p.Queue(`BEGIN`)
	p.QueueExecute("debit", btrim.Int64(30), btrim.Int64(1))
	p.QueueExecute("credit", btrim.Int64(30), btrim.Int64(2))
	p.Queue(`COMMIT`)
	if results, err = p.Run(); err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("transfer statement %d: %v", i, r.Err)
		}
	}
	res := clientExec(t, c, `SELECT bal FROM acct WHERE id = 2`)
	if res.Rows[0][0].Int() != 80 {
		t.Fatalf("bal = %v", res.Rows[0][0])
	}

	// Deallocate inside a batch; the name is gone for the next frame.
	p.QueueDeallocate("debit")
	if results, err = p.Run(); err != nil || results[0].Err != nil {
		t.Fatalf("deallocate: %v / %+v", err, results)
	}
	p.QueueExecute("debit", btrim.Int64(1), btrim.Int64(1))
	results, err = p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, sql.ErrNoPrepared) {
		t.Fatalf("execute after deallocate: %v", results[0].Err)
	}

	if st := srv.Stats(); st.PreparedExecs < 2 {
		t.Fatalf("prepared execs rollup = %+v", st)
	}
}

// TestPipelineMidBatchFailure: the failed statement reports its real
// error, everything after it is skipped with the typed sentinel, the
// open transaction is aborted at the failure point, and the connection
// stays frame-aligned for the next request.
func TestPipelineMidBatchFailure(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	clientExec(t, c,
		`CREATE TABLE t (a INT, PRIMARY KEY (a))`,
		`INSERT INTO t VALUES (1)`,
	)

	results, err := c.ExecBatch(
		`BEGIN`,
		`INSERT INTO t VALUES (2)`,
		`INSERT INTO t VALUES (1)`, // duplicate key: fails here
		`INSERT INTO t VALUES (3)`, // never executes
		`COMMIT`,                   // never executes
	)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Fatalf("pre-failure statements: %v / %v", results[0].Err, results[1].Err)
	}
	if !errors.Is(results[2].Err, btrim.ErrDuplicateKey) {
		t.Fatalf("failure point: %v", results[2].Err)
	}
	for i := 3; i < 5; i++ {
		if !errors.Is(results[i].Err, ErrStmtSkipped) {
			t.Fatalf("statement %d after failure: %v", i, results[i].Err)
		}
		if IsRetryable(results[i].Err) {
			t.Fatalf("skipped must not carry the retryable bit")
		}
	}

	// The frame left the session in the aborted-block state; plain Exec
	// on the same connection still works and sees it.
	if _, err := c.Exec(`SELECT * FROM t`); !errors.Is(err, sql.ErrTxnAborted) {
		t.Fatalf("after failed batch: %v", err)
	}
	clientExec(t, c, `ROLLBACK`)
	// Nothing from the failed frame is visible.
	if res := clientExec(t, c, `SELECT a FROM t`); len(res.Rows) != 1 {
		t.Fatalf("aborted batch leaked rows: %+v", res.Rows)
	}
	if st := srv.Stats(); st.SkippedStatements != 2 {
		t.Fatalf("skipped statements = %d, want 2", st.SkippedStatements)
	}
}

// TestPipelineConcurrentClients hammers the batch path from several
// connections at once (run under -race via the test-race target): per
// connection the frames must stay aligned and every client sees exactly
// its own results.
func TestPipelineConcurrentClients(t *testing.T) {
	srv, addr := startServer(t)
	setup := dial(t, addr)
	clientExec(t, setup, `CREATE TABLE t (a INT, b INT, PRIMARY KEY (a))`)

	const clients, rounds = 6, 25
	var wg sync.WaitGroup
	errc := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errc <- err
				return
			}
			defer c.Close()
			p := c.Pipeline()
			p.QueuePrepare("ins", `INSERT INTO t VALUES (?, ?)`)
			if results, err := p.Run(); err != nil || results[0].Err != nil {
				errc <- fmt.Errorf("worker %d prepare: %v %+v", w, err, results)
				return
			}
			for i := 0; i < rounds; i++ {
				key := int64(w*rounds + i)
				p.Queue(`BEGIN`)
				p.QueueExecute("ins", btrim.Int64(key), btrim.Int64(int64(w)))
				p.Queue(`COMMIT`)
				p.Queue(fmt.Sprintf(`SELECT b FROM t WHERE a = %d`, key))
				results, err := p.Run()
				if err != nil {
					errc <- fmt.Errorf("worker %d round %d: %v", w, i, err)
					return
				}
				for j, r := range results {
					if r.Err != nil {
						errc <- fmt.Errorf("worker %d round %d stmt %d: %v", w, i, j, r.Err)
						return
					}
				}
				rows := results[3].Res.Rows
				if len(rows) != 1 || rows[0][0].Int() != int64(w) {
					errc <- fmt.Errorf("worker %d round %d read back %+v", w, i, rows)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	if res := clientExec(t, setup, `SELECT a FROM t WHERE a >= 0`); len(res.Rows) != clients*rounds {
		t.Fatalf("rows = %d, want %d", len(res.Rows), clients*rounds)
	}
	st := srv.Stats()
	if st.BatchFrames < clients*rounds || st.PreparedExecs != clients*rounds {
		t.Fatalf("rollup = %+v", st)
	}
	if st.PlanCacheHits == 0 {
		t.Fatalf("transparent cache never hit across rounds: %+v", st)
	}
}

// TestBatchMalformedFrame: a corrupt batch gets one clean error
// response and the connection survives.
func TestBatchMalformedFrame(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	clientExec(t, c, `CREATE TABLE t (a INT, PRIMARY KEY (a))`)

	// Hand-roll a frame that claims 3 messages but carries garbage.
	payload := []byte{batchMagic, 3, 'X', 'Y', 'Z'}
	if err := writeFrame(c.bw, payload); err != nil {
		t.Fatal(err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(c.br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeResponse(resp); err == nil {
		t.Fatal("malformed batch should answer with an error")
	}
	// Connection still usable.
	if res := clientExec(t, c, `SELECT * FROM t`); len(res.Rows) != 0 {
		t.Fatalf("post-garbage select = %+v", res.Rows)
	}
}

func TestBatchRoundTripCodec(t *testing.T) {
	msgs := []batchMsg{
		{kind: msgSQL, sql: `SELECT 1`},
		{kind: msgPrepare, name: "p", sql: `SELECT a FROM t WHERE a = ?`},
		{kind: msgBind, name: "p", args: []btrim.Value{
			btrim.Int64(-7), btrim.Float64(2.5), btrim.String("x"), btrim.Null,
		}},
		{kind: msgDeallocate, name: "p"},
	}
	buf := []byte{batchMagic, byte(len(msgs))}
	for i := range msgs {
		buf = appendBatchMsg(buf, &msgs[i])
	}
	got, err := decodeBatch(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages", len(got))
	}
	for i := range msgs {
		if got[i].kind != msgs[i].kind || got[i].sql != msgs[i].sql || got[i].name != msgs[i].name {
			t.Fatalf("message %d = %+v, want %+v", i, got[i], msgs[i])
		}
	}
	if got[2].args[0].Int() != -7 || got[2].args[1].Float() != 2.5 ||
		got[2].args[2].Str() != "x" || !got[2].args[3].IsNull() {
		t.Fatalf("args = %+v", got[2].args)
	}
}

// TestContentionSentinelsCrossWire checks the engine's contention-abort
// sentinels survive response encoding so clients can classify them as
// retry-the-transaction rather than hard failures.
func TestContentionSentinelsCrossWire(t *testing.T) {
	for _, sentinel := range []error{btrim.ErrLockTimeout, btrim.ErrTxnRetry} {
		resp := encodeResponse(nil, nil, fmt.Errorf("update t: %w", sentinel))
		_, err := decodeResponse(resp)
		if err == nil {
			t.Fatalf("%v: decoded as success", sentinel)
		}
		if !errors.Is(err, sentinel) {
			t.Fatalf("decoded error %v does not wrap %v", err, sentinel)
		}
		if !IsRetryable(err) {
			t.Fatalf("%v should carry the retryable bit", sentinel)
		}
	}
}
