package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/btrim"
)

// batchMsg is one decoded message of a pipelined batch frame.
type batchMsg struct {
	kind byte
	sql  string        // msgSQL statement text, or msgPrepare body
	name string        // prepared-statement name (P/B/D)
	args []btrim.Value // bind arguments (B)
}

// appendString appends a uvarint-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decodeString consumes a uvarint-length-prefixed string.
func decodeString(b []byte) (string, []byte, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return "", nil, io.ErrUnexpectedEOF
	}
	return string(b[sz : sz+int(n)]), b[sz+int(n):], nil
}

// appendBatchMsg appends one encoded batch message.
func appendBatchMsg(b []byte, m *batchMsg) []byte {
	b = append(b, m.kind)
	switch m.kind {
	case msgSQL:
		b = appendString(b, m.sql)
	case msgPrepare:
		b = appendString(b, m.name)
		b = appendString(b, m.sql)
	case msgBind:
		b = appendString(b, m.name)
		b = binary.AppendUvarint(b, uint64(len(m.args)))
		for _, v := range m.args {
			b = appendValue(b, v)
		}
	case msgDeallocate:
		b = appendString(b, m.name)
	}
	return b
}

// decodeBatch parses a batch request payload (first byte batchMagic)
// into its messages. Counts are validated against the remaining payload
// before sizing any allocation, so a malformed frame fails with a clean
// error instead of an oversized make. The scratch slice (a previous
// call's result, or nil) donates its backing array and per-message args
// capacity, so a session decoding frame after frame stops allocating.
func decodeBatch(b []byte, scratch []batchMsg) ([]batchMsg, error) {
	if len(b) == 0 || b[0] != batchMagic {
		return nil, fmt.Errorf("server: not a batch frame")
	}
	b = b[1:]
	count, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, io.ErrUnexpectedEOF
	}
	b = b[sz:]
	if count == 0 {
		return nil, fmt.Errorf("server: empty batch")
	}
	// Each message is at least its one-byte kind.
	if count > uint64(len(b)) {
		return nil, io.ErrUnexpectedEOF
	}
	msgs := scratch[:0]
	for i := uint64(0); i < count; i++ {
		if len(b) == 0 {
			return nil, io.ErrUnexpectedEOF
		}
		m := batchMsg{kind: b[0]}
		if i < uint64(cap(msgs)) {
			// Recycle the args slice the previous frame left in this slot.
			m.args = msgs[:cap(msgs)][i].args[:0]
		}
		b = b[1:]
		var err error
		switch m.kind {
		case msgSQL:
			m.sql, b, err = decodeString(b)
		case msgPrepare:
			if m.name, b, err = decodeString(b); err == nil {
				m.sql, b, err = decodeString(b)
			}
		case msgBind:
			if m.name, b, err = decodeString(b); err != nil {
				break
			}
			var nargs uint64
			nargs, sz = binary.Uvarint(b)
			if sz <= 0 {
				err = io.ErrUnexpectedEOF
				break
			}
			b = b[sz:]
			if nargs > uint64(len(b)) { // every value is ≥ 1 byte
				err = io.ErrUnexpectedEOF
				break
			}
			if uint64(cap(m.args)) < nargs {
				m.args = make([]btrim.Value, 0, nargs)
			}
			for j := uint64(0); j < nargs; j++ {
				var v btrim.Value
				if v, b, err = decodeValue(b); err != nil {
					break
				}
				m.args = append(m.args, v)
			}
		case msgDeallocate:
			m.name, b, err = decodeString(b)
		default:
			err = fmt.Errorf("server: bad batch message kind %q", m.kind)
		}
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, m)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("server: %d trailing bytes after batch", len(b))
	}
	return msgs, nil
}
