package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/btrim"
	"repro/internal/sql"
)

// TestConcurrentSessionsMixedDML is the multi-session stress test: N TCP
// clients hammer one table with mixed DML (inserts, blind and arithmetic
// updates, deletes, point and range reads) while a reader asserts
// snapshot isolation. Run under -race this also checks the server's
// per-connection state for data races.
func TestConcurrentSessionsMixedDML(t *testing.T) {
	_, addr := startServer(t)
	setup := dial(t, addr)
	clientExec(t, setup,
		`CREATE TABLE acct (id INT, owner STRING, bal INT, PRIMARY KEY (id))`,
		`CREATE TABLE audit (id INT, who INT, PRIMARY KEY (id))`,
	)
	// One counter row per worker: concurrent `bal = bal + 1` increments
	// must never be lost.
	const workers = 8
	const iters = 40
	for w := 0; w < workers; w++ {
		clientExec(t, setup, fmt.Sprintf(
			`INSERT INTO acct VALUES (%d, 'w%d', 0)`, w, w))
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			base := 1000 + w*iters
			for i := 0; i < iters; i++ {
				// Increment own counter inside an explicit txn together with
				// an audit insert; later delete the audit row autocommit.
				if _, err := c.Exec(`BEGIN`); err != nil {
					errCh <- err
					return
				}
				if _, err := c.Exec(fmt.Sprintf(
					`UPDATE acct SET bal = bal + 1 WHERE id = %d`, w)); err != nil {
					errCh <- err
					return
				}
				if _, err := c.Exec(fmt.Sprintf(
					`INSERT INTO audit VALUES (%d, %d)`, base+i, w)); err != nil {
					errCh <- err
					return
				}
				if _, err := c.Exec(`COMMIT`); err != nil {
					errCh <- err
					return
				}
				if i%2 == 0 {
					if _, err := c.Exec(fmt.Sprintf(
						`DELETE FROM audit WHERE id = %d`, base+i)); err != nil {
						errCh <- err
						return
					}
				}
				if _, err := c.Exec(fmt.Sprintf(
					`SELECT bal FROM acct WHERE id = %d`, w)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}

	// Reader: the audit insert and the counter increment commit
	// atomically, so a snapshot must never observe SUM-style drift —
	// every scan sees bal values that are each >= 0 and <= iters, and
	// never a torn row.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		c, err := Dial(addr)
		if err != nil {
			errCh <- err
			return
		}
		defer c.Close()
		for i := 0; i < 50; i++ {
			res, err := c.Exec(`SELECT id, bal FROM acct WHERE bal >= 0`)
			if err != nil {
				errCh <- err
				return
			}
			for _, r := range res.Rows {
				if b := r[1].Int(); b < 0 || b > iters {
					errCh <- fmt.Errorf("impossible balance %d for id %d", b, r[0].Int())
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	<-readerDone
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// No increment lost: every worker's counter reached exactly iters.
	res := clientExec(t, setup, `SELECT id, bal FROM acct WHERE id >= 0`)
	if len(res.Rows) != workers {
		t.Fatalf("rows = %d, want %d", len(res.Rows), workers)
	}
	for _, r := range res.Rows {
		if r[1].Int() != iters {
			t.Fatalf("worker %d counter = %d, want %d", r[0].Int(), r[1].Int(), iters)
		}
	}
	// Odd-iteration audit rows survive, even ones were deleted.
	res = clientExec(t, setup, `SELECT id FROM audit WHERE id >= 0`)
	if want := workers * iters / 2; len(res.Rows) != want {
		t.Fatalf("audit rows = %d, want %d", len(res.Rows), want)
	}
}

// TestShutdownWithOpenTransactions: Shutdown while sessions hold open
// transactions must abort them all cleanly — committed work stays,
// uncommitted work vanishes, and Serve returns nil.
func TestShutdownWithOpenTransactions(t *testing.T) {
	db, err := btrim.Open(btrim.Config{IMRSCacheBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	eng := sql.WrapDB(db)
	srv := New(eng)
	go func() {
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Error(err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Addr() == nil {
		if time.Now().After(deadline) {
			t.Fatal("server never listened")
		}
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr().String()

	setup, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	clientExec(t, setup, `CREATE TABLE t (a INT, PRIMARY KEY (a))`,
		`INSERT INTO t VALUES (100)`)

	// Park several sessions mid-transaction with uncommitted writes.
	const open = 4
	for i := 0; i < open; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clientExec(t, c, `BEGIN`, fmt.Sprintf(`INSERT INTO t VALUES (%d)`, i))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := srv.Stats().DrainAborts; got != open {
		t.Fatalf("drain aborts = %d, want %d", got, open)
	}
	if srv.Stats().ActiveSessions != 0 {
		t.Fatalf("sessions alive after drain: %d", srv.Stats().ActiveSessions)
	}

	// The engine is still usable in-process, only the committed row is
	// there, and a second Serve on a drained server is refused.
	sess := sql.NewSession(eng)
	res, err := sess.Exec(`SELECT a FROM t WHERE a >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 100 {
		t.Fatalf("post-drain rows = %+v, want just the committed 100", res.Rows)
	}
	if err := srv.ListenAndServe("127.0.0.1:0"); !errors.Is(err, ErrShutdown) {
		t.Fatalf("re-Serve after drain: %v", err)
	}
}
