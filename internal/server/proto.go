// Package server is the network layer above the SQL front end: a
// length-prefixed statement protocol over TCP, one goroutine and one
// sql.Session per connection, graceful drain on shutdown, and a client
// used by the shell's remote mode and the benchmark's server path
// (DESIGN.md §13).
//
// Framing: every message is a 4-byte big-endian length followed by that
// many payload bytes. A request payload is either one UTF-8 SQL
// statement, or — when its first byte is 0x00, which no SQL text starts
// with — a pipelined batch:
//
//	0x00, uvarint count, then count messages, each a kind byte + body:
//	  'S' sql        — uvarint len, statement text
//	  'P' prepare    — uvarint len + name, uvarint len + statement text
//	  'B' bind+exec  — uvarint len + name, uvarint nargs, typed values
//	  'D' deallocate — uvarint len + name
//
// A response payload starts with a tag byte:
//
//	'K' ok      — uvarint affected, then the message string
//	'R' rows    — uvarint ncols, col names, uvarint nrows, values,
//	              then (optionally) uvarint warning length + warning
//	'E' error   — 1 code byte, then the error string; the code's high
//	              bit (flagRetryable) marks failures the client may
//	              retry after backoff
//	'M' multi   — uvarint count, then count sub-responses, each
//	              uvarint-length-prefixed and encoded as above; the
//	              batch reply, one sub-response per request message
//
// A batch executes in order and stops at the first failure: the failed
// message carries its real error, and every later message answers with
// a codeSkipped error (ErrStmtSkipped client-side) without executing —
// so a COMMIT queued behind a failed statement never runs. The frame
// stays aligned either way: every request message gets exactly one
// sub-response.
//
// Values are tagged: 'n' NULL; 'i' + 8-byte int; 'f' + 8-byte IEEE-754
// bits; 's'/'b' + uvarint length + bytes (string / raw bytes).
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/btrim"
	"repro/internal/row"
	"repro/internal/sql"
)

// MaxFrame bounds one protocol frame; larger requests or results are
// rejected rather than buffered.
const MaxFrame = 16 << 20

// Response tags.
const (
	tagOK    = 'K'
	tagRows  = 'R'
	tagErr   = 'E'
	tagMulti = 'M'
)

// batchMagic marks a request payload as a pipelined batch. SQL text is
// UTF-8 and never starts with a NUL, so the discriminator is unambiguous.
const batchMagic = 0x00

// Batch message kinds.
const (
	msgSQL        = 'S'
	msgPrepare    = 'P'
	msgBind       = 'B'
	msgDeallocate = 'D'
)

// Error codes carried on 'E' frames, so typed sentinel errors survive
// the wire.
const (
	codeGeneric byte = iota + 1
	codeTxnAborted
	codeNoTxn
	codeTxnOpen
	codeDuplicateKey
	codeShutdown
	codeDeadline
	codeOverCapacity
	codeReadOnly
	codeShardDown
	codePartialResult
	codeFrameTooLarge
	codeInternal
	codeSkipped
	codeNoPrepared
	codeLockTimeout
	codeTxnRetry
)

// flagRetryable is OR'd onto the code byte when the failure is safe to
// retry after backoff: the statement had no durable effect and the
// condition is expected to clear (capacity, deadline, a shard mid-
// recovery, a drain the client can redirect away from).
const flagRetryable byte = 0x80

// ErrShutdown reports a statement rejected because the server is
// draining.
var ErrShutdown = errors.New("server: shutting down")

// ErrOverCapacity reports a connection rejected at accept because the
// server is at its configured connection limit. Retryable: slots free
// up as other sessions finish.
var ErrOverCapacity = errors.New("server: too many connections")

// ErrFrameTooLarge reports a protocol frame above MaxFrame. The
// connection survives: the oversized payload is drained (inbound) or
// replaced by this error (outbound), and framing stays aligned.
var ErrFrameTooLarge = errors.New("server: frame exceeds size limit")

// ErrInternal reports a statement that panicked inside the server. The
// session was reset (any open transaction aborted); the connection
// survives.
var ErrInternal = errors.New("server: internal error")

// ErrStmtSkipped reports a batch message that never executed because an
// earlier message in the same frame failed. Not retryable on its own:
// the client must look at the first real error and decide what to
// re-issue.
var ErrStmtSkipped = errors.New("server: statement skipped after earlier failure in batch")

func errCode(err error) byte {
	switch {
	case errors.Is(err, sql.ErrTxnAborted):
		return codeTxnAborted
	case errors.Is(err, sql.ErrNoTxn):
		return codeNoTxn
	case errors.Is(err, sql.ErrTxnOpen):
		return codeTxnOpen
	case errors.Is(err, btrim.ErrDuplicateKey):
		return codeDuplicateKey
	case errors.Is(err, ErrShutdown):
		return codeShutdown
	case errors.Is(err, sql.ErrDeadlineExceeded):
		return codeDeadline
	case errors.Is(err, ErrOverCapacity):
		return codeOverCapacity
	case errors.Is(err, btrim.ErrPartialResult):
		return codePartialResult
	case errors.Is(err, btrim.ErrShardDown):
		return codeShardDown
	case errors.Is(err, btrim.ErrReadOnly):
		return codeReadOnly
	case errors.Is(err, ErrFrameTooLarge):
		return codeFrameTooLarge
	case errors.Is(err, ErrInternal):
		return codeInternal
	case errors.Is(err, ErrStmtSkipped):
		return codeSkipped
	case errors.Is(err, sql.ErrNoPrepared):
		return codeNoPrepared
	case errors.Is(err, btrim.ErrLockTimeout):
		return codeLockTimeout
	case errors.Is(err, btrim.ErrTxnRetry):
		return codeTxnRetry
	}
	return codeGeneric
}

// retryableErr classifies server-side failures for the wire's retryable
// bit. Deadline, capacity, drain, partial results, and down or
// recovering shards clear on their own; a ReadOnly rejection is
// retryable only for the recoverable park (in-doubt resolution
// pending), never for the sticky poisoned-WAL freeze.
func retryableErr(err error) bool {
	switch {
	case errors.Is(err, sql.ErrDeadlineExceeded),
		errors.Is(err, ErrOverCapacity),
		errors.Is(err, ErrShutdown),
		errors.Is(err, btrim.ErrPartialResult),
		errors.Is(err, btrim.ErrShardDown),
		// Lock waits and engine conflict aborts clear on their own;
		// the transaction was already rolled back, so re-running it
		// from the top is always safe.
		errors.Is(err, btrim.ErrLockTimeout),
		errors.Is(err, btrim.ErrTxnRetry):
		return true
	}
	return btrim.IsRecoverableReadOnly(err)
}

// codeErr rebuilds a client-side error that wraps the matching sentinel
// so errors.Is works across the wire. A set retryable bit additionally
// wraps the result in *RetryableError.
func codeErr(code byte, msg string) error {
	retry := code&flagRetryable != 0
	code &^= flagRetryable
	var err error
	switch code {
	case codeTxnAborted:
		err = wrapSentinel(msg, sql.ErrTxnAborted)
	case codeNoTxn:
		err = wrapSentinel(msg, sql.ErrNoTxn)
	case codeTxnOpen:
		err = wrapSentinel(msg, sql.ErrTxnOpen)
	case codeDuplicateKey:
		err = wrapSentinel(msg, btrim.ErrDuplicateKey)
	case codeShutdown:
		err = wrapSentinel(msg, ErrShutdown)
	case codeDeadline:
		err = wrapSentinel(msg, sql.ErrDeadlineExceeded)
	case codeOverCapacity:
		err = wrapSentinel(msg, ErrOverCapacity)
	case codeReadOnly:
		err = wrapSentinel(msg, btrim.ErrReadOnly)
	case codeShardDown:
		err = wrapSentinel(msg, btrim.ErrShardDown)
	case codePartialResult:
		err = wrapSentinel(msg, btrim.ErrPartialResult)
	case codeFrameTooLarge:
		err = wrapSentinel(msg, ErrFrameTooLarge)
	case codeInternal:
		err = wrapSentinel(msg, ErrInternal)
	case codeSkipped:
		err = wrapSentinel(msg, ErrStmtSkipped)
	case codeNoPrepared:
		err = wrapSentinel(msg, sql.ErrNoPrepared)
	case codeLockTimeout:
		err = wrapSentinel(msg, btrim.ErrLockTimeout)
	case codeTxnRetry:
		err = wrapSentinel(msg, btrim.ErrTxnRetry)
	default:
		err = errors.New(msg)
	}
	if retry {
		err = &RetryableError{Err: err}
	}
	return err
}

// wrapSentinel attaches the sentinel without repeating its text when
// the server-side message already ends with it.
func wrapSentinel(msg string, sentinel error) error {
	if s := sentinel.Error(); msg == s || strings.HasSuffix(msg, s) {
		if msg == s {
			return sentinel
		}
		return fmt.Errorf("%s%w", msg[:len(msg)-len(sentinel.Error())], sentinel)
	}
	return fmt.Errorf("%s: %w", msg, sentinel)
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame, reusing buf when it fits.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		// Drain the oversized payload so the stream stays frame-aligned:
		// the caller can answer with a typed error and keep the
		// connection, instead of desyncing and misparsing payload bytes
		// as the next frame header.
		if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("server: frame of %d bytes exceeds %d byte limit: %w", n, MaxFrame, ErrFrameTooLarge)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func appendValue(b []byte, v btrim.Value) []byte {
	switch v.Kind() {
	case row.KindInt64:
		b = append(b, 'i')
		b = binary.BigEndian.AppendUint64(b, uint64(v.Int()))
	case row.KindFloat64:
		b = append(b, 'f')
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(v.Float()))
	case row.KindString:
		b = append(b, 's')
		b = binary.AppendUvarint(b, uint64(len(v.Str())))
		b = append(b, v.Str()...)
	case row.KindBytes:
		b = append(b, 'b')
		b = binary.AppendUvarint(b, uint64(len(v.Raw())))
		b = append(b, v.Raw()...)
	default:
		b = append(b, 'n')
	}
	return b
}

func decodeValue(b []byte) (btrim.Value, []byte, error) {
	if len(b) == 0 {
		return btrim.Null, nil, io.ErrUnexpectedEOF
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case 'n':
		return btrim.Null, b, nil
	case 'i':
		if len(b) < 8 {
			return btrim.Null, nil, io.ErrUnexpectedEOF
		}
		return btrim.Int64(int64(binary.BigEndian.Uint64(b))), b[8:], nil
	case 'f':
		if len(b) < 8 {
			return btrim.Null, nil, io.ErrUnexpectedEOF
		}
		return btrim.Float64(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], nil
	case 's', 'b':
		n, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < n {
			return btrim.Null, nil, io.ErrUnexpectedEOF
		}
		data := b[sz : sz+int(n)]
		if tag == 's' {
			return btrim.String(string(data)), b[sz+int(n):], nil
		}
		return btrim.Bytes(append([]byte(nil), data...)), b[sz+int(n):], nil
	default:
		return btrim.Null, nil, fmt.Errorf("server: bad value tag %q", tag)
	}
}

// encodeResponse serializes a statement outcome into buf.
func encodeResponse(buf []byte, res *sql.Result, err error) []byte {
	buf = buf[:0]
	if err != nil {
		code := errCode(err)
		if retryableErr(err) {
			code |= flagRetryable
		}
		buf = append(buf, tagErr, code)
		buf = append(buf, err.Error()...)
		return buf
	}
	if res.Cols == nil {
		buf = append(buf, tagOK)
		buf = binary.AppendUvarint(buf, uint64(res.Affected))
		buf = append(buf, res.Msg...)
		return buf
	}
	buf = append(buf, tagRows)
	buf = binary.AppendUvarint(buf, uint64(len(res.Cols)))
	for _, c := range res.Cols {
		buf = binary.AppendUvarint(buf, uint64(len(c)))
		buf = append(buf, c...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(res.Rows)))
	for _, r := range res.Rows {
		for _, v := range r {
			buf = appendValue(buf, v)
		}
	}
	if res.Warning != "" {
		buf = binary.AppendUvarint(buf, uint64(len(res.Warning)))
		buf = append(buf, res.Warning...)
	}
	return buf
}

// decodeResponse is the client-side inverse of encodeResponse.
func decodeResponse(b []byte) (*sql.Result, error) {
	if len(b) == 0 {
		return nil, io.ErrUnexpectedEOF
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case tagErr:
		if len(b) == 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, codeErr(b[0], string(b[1:]))
	case tagOK:
		aff, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, io.ErrUnexpectedEOF
		}
		return &sql.Result{Affected: int64(aff), Msg: string(b[sz:])}, nil
	case tagRows:
		ncols, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, io.ErrUnexpectedEOF
		}
		b = b[sz:]
		// Every column name costs at least its one-byte length prefix, so
		// a count beyond the remaining payload is malformed — reject it
		// before sizing the allocation to an attacker-chosen number.
		if ncols > uint64(len(b)) {
			return nil, io.ErrUnexpectedEOF
		}
		res := &sql.Result{Cols: make([]string, 0, ncols)}
		for i := uint64(0); i < ncols; i++ {
			n, sz := binary.Uvarint(b)
			if sz <= 0 || uint64(len(b)-sz) < n {
				return nil, io.ErrUnexpectedEOF
			}
			res.Cols = append(res.Cols, string(b[sz:sz+int(n)]))
			b = b[sz+int(n):]
		}
		nrows, sz := binary.Uvarint(b)
		if sz <= 0 {
			return nil, io.ErrUnexpectedEOF
		}
		b = b[sz:]
		// Same guard for the row count: each row carries ncols values of
		// at least one byte each (and zero-column row frames are never
		// produced, so a nonzero count with no columns is malformed too).
		if ncols == 0 && nrows > 0 || ncols > 0 && nrows > uint64(len(b))/ncols {
			return nil, io.ErrUnexpectedEOF
		}
		for i := uint64(0); i < nrows; i++ {
			r := make(btrim.Row, ncols)
			for j := range r {
				var v btrim.Value
				var err error
				v, b, err = decodeValue(b)
				if err != nil {
					return nil, err
				}
				r[j] = v
			}
			res.Rows = append(res.Rows, r)
		}
		// Optional trailing warning (absent in frames from older servers).
		if len(b) > 0 {
			n, sz := binary.Uvarint(b)
			if sz > 0 && uint64(len(b)-sz) >= n {
				res.Warning = string(b[sz : sz+int(n)])
			}
		}
		return res, nil
	default:
		return nil, fmt.Errorf("server: bad response tag %q", tag)
	}
}
