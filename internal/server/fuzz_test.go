package server

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/btrim"
	"repro/internal/sql"
)

// FuzzDecodeResponse hammers the client-side response parser with
// arbitrary bytes. It guards the trust boundary of remote mode: a
// malicious or corrupted server must produce a clean error, never a
// panic or an attacker-sized allocation. A payload that decodes to a
// result must survive an encode/decode round trip unchanged in shape.
func FuzzDecodeResponse(f *testing.F) {
	// One seed per response shape.
	f.Add(encodeResponse(nil, &sql.Result{Affected: 3, Msg: "INSERT"}, nil))
	f.Add(encodeResponse(nil, &sql.Result{
		Cols: []string{"a", "b"},
		Rows: []btrim.Row{{btrim.Int64(7), btrim.String("x")}, {btrim.Float64(1.5), btrim.Null}},
	}, nil))
	f.Add(encodeResponse(nil, &sql.Result{
		Cols: []string{"a"}, Rows: []btrim.Row{{btrim.Bytes([]byte{0, 1})}},
		Warning: "partial",
	}, nil))
	f.Add(encodeResponse(nil, nil, ErrOverCapacity))
	f.Add(encodeResponse(nil, nil, ErrStmtSkipped))
	// Regression: a row frame whose uvarint column count is near 2^64
	// used to size the column slice before any bounds check and panic in
	// makeslice.
	f.Add(append([]byte{tagRows}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	// Same attack on the row count with a plausible column header.
	f.Add(append([]byte{tagRows, 0x01, 0x01, 'a'}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	f.Add([]byte{})
	f.Add([]byte{tagMulti, 0x02})

	f.Fuzz(func(t *testing.T, body []byte) {
		res, err := decodeResponse(body)
		if err != nil || res == nil {
			return
		}
		enc := encodeResponse(nil, res, nil)
		res2, err := decodeResponse(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded result failed: %v\n in  %x\n enc %x", err, body, enc)
		}
		if len(res2.Cols) != len(res.Cols) || len(res2.Rows) != len(res.Rows) ||
			res2.Affected != res.Affected || res2.Msg != res.Msg {
			t.Fatalf("round trip drifted:\n in  %+v\n out %+v", res, res2)
		}
	})
}

// FuzzDecodeBatch hammers the server-side batch parser: arbitrary
// client bytes must never panic the handler or size an allocation from
// an unvalidated count. A batch that decodes must re-encode to a batch
// that decodes identically.
func FuzzDecodeBatch(f *testing.F) {
	valid := []byte{batchMagic, 4}
	for _, m := range []batchMsg{
		{kind: msgSQL, sql: "SELECT a FROM t WHERE a = 1"},
		{kind: msgPrepare, name: "p", sql: "INSERT INTO t VALUES (?)"},
		{kind: msgBind, name: "p", args: []btrim.Value{btrim.Int64(1), btrim.String("x"), btrim.Null}},
		{kind: msgDeallocate, name: "p"},
	} {
		valid = appendBatchMsg(valid, &m)
	}
	f.Add(valid)
	// Count far beyond the payload.
	f.Add(append([]byte{batchMagic}, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01))
	// Bind with an absurd argument count.
	f.Add([]byte{batchMagic, 1, msgBind, 1, 'p', 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Add([]byte{batchMagic, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, body []byte) {
		msgs, err := decodeBatch(body, nil)
		if err != nil {
			return
		}
		enc := []byte{batchMagic}
		enc = binary.AppendUvarint(enc, uint64(len(msgs)))
		for i := range msgs {
			enc = appendBatchMsg(enc, &msgs[i])
		}
		msgs2, err := decodeBatch(enc, nil)
		if err != nil {
			t.Fatalf("re-decode of re-encoded batch failed: %v\n in  %x\n enc %x", err, body, enc)
		}
		enc2 := []byte{batchMagic}
		enc2 = binary.AppendUvarint(enc2, uint64(len(msgs2)))
		for i := range msgs2 {
			enc2 = appendBatchMsg(enc2, &msgs2[i])
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical encoding drifted:\n one %x\n two %x", enc, enc2)
		}
	})
}
