package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/btrim"
	"repro/internal/sql"
)

// The admission-control and isolation tests: statement deadlines,
// connection caps, idle reaping, panic containment, and oversized
// frames — each must degrade one statement or one connection, never
// the server.

func memEngine(t *testing.T) sql.Engine {
	t.Helper()
	db, err := btrim.Open(btrim.Config{IMRSCacheBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return sql.WrapDB(db)
}

func startServerWith(t *testing.T, eng sql.Engine, cfg Config) (*Server, string) {
	t.Helper()
	srv := NewWithConfig(eng, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	t.Cleanup(func() { shutdownServer(t, srv, served) })
	return srv, ln.Addr().String()
}

func shutdownServer(t *testing.T, srv *Server, served chan error) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Error("Serve did not return after Shutdown")
	}
}

// slowEngine delays every vectorized scan, so a statement deadline can
// expire mid-statement deterministically.
type slowEngine struct {
	sql.Engine
	delay time.Duration
}

func (e slowEngine) Begin() sql.Txn { return slowTxn{e.Engine.Begin(), e.delay} }

type slowTxn struct {
	sql.Txn
	delay time.Duration
}

func (t slowTxn) ScanBatches(table string, cols []string, batchRows int, fn func(*btrim.Batch) bool) error {
	time.Sleep(t.delay)
	return t.Txn.ScanBatches(table, cols, batchRows, fn)
}

func TestServerStatementDeadline(t *testing.T) {
	eng := slowEngine{memEngine(t), 80 * time.Millisecond}
	_, addr := startServerWith(t, eng, Config{StatementTimeout: 25 * time.Millisecond})
	c := dial(t, addr)
	clientExec(t, c,
		`CREATE TABLE t (a INT, PRIMARY KEY (a))`,
		`INSERT INTO t VALUES (1)`, // point writes are not slowed
	)

	// The scan outlives its deadline: typed, retryable, autocommit
	// rolled back.
	_, err := c.Exec(`SELECT a FROM t`)
	if !errors.Is(err, sql.ErrDeadlineExceeded) {
		t.Fatalf("slow scan: %v, want ErrDeadlineExceeded", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("deadline error not marked retryable: %v", err)
	}

	// Inside an explicit transaction the expired statement aborts the
	// block like any other failure.
	clientExec(t, c, `BEGIN`, `INSERT INTO t VALUES (2)`)
	if _, err := c.Exec(`SELECT a FROM t`); !errors.Is(err, sql.ErrDeadlineExceeded) {
		t.Fatalf("slow scan in txn: %v", err)
	}
	if _, err := c.Exec(`SELECT a FROM t WHERE a = 2`); !errors.Is(err, sql.ErrTxnAborted) {
		t.Fatalf("statement after deadline abort: %v, want ErrTxnAborted", err)
	}
	clientExec(t, c, `ROLLBACK`)
	// Point lookups dodge the slow scan path: the aborted INSERT is gone.
	if res := clientExec(t, c, `SELECT a FROM t WHERE a = 2`); len(res.Rows) != 0 {
		t.Fatalf("aborted insert visible: %+v", res.Rows)
	}
}

func TestServerMaxConns(t *testing.T) {
	srv, addr := startServerWith(t, memEngine(t), Config{MaxConns: 1})
	c1 := dial(t, addr)
	clientExec(t, c1, `CREATE TABLE t (a INT, PRIMARY KEY (a))`) // ensures c1 is registered

	// The second connection is answered with a typed, retryable
	// over-capacity error on its first statement.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	_, err = c2.Exec(`SELECT a FROM t WHERE a = 1`)
	if !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("over-capacity statement: %v, want ErrOverCapacity", err)
	}
	if !IsRetryable(err) {
		t.Fatalf("over-capacity error not marked retryable: %v", err)
	}
	if got := srv.Stats().OverCapacityRejects; got != 1 {
		t.Fatalf("over-capacity rejects = %d, want 1", got)
	}

	// A slot frees when c1 leaves; the retry then succeeds.
	_ = c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().ActiveSessions > 0 {
		if time.Now().After(deadline) {
			t.Fatal("session not reaped after close")
		}
		time.Sleep(2 * time.Millisecond)
	}
	c3 := dial(t, addr)
	clientExec(t, c3, `INSERT INTO t VALUES (1)`)
}

func TestServerIdleReap(t *testing.T) {
	srv, addr := startServerWith(t, memEngine(t), Config{IdleTimeout: 50 * time.Millisecond})
	c := dial(t, addr)
	clientExec(t, c,
		`CREATE TABLE t (a INT, PRIMARY KEY (a))`,
		`BEGIN`, `INSERT INTO t VALUES (7)`,
	)

	// Go quiet past the idle timeout: the server reaps the connection
	// and the open transaction aborts exactly as on client hangup.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().IdleReaps == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection never reaped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.Stats()
	if st.ActiveSessions != 0 || st.DrainAborts != 1 {
		t.Fatalf("after reap: %+v, want 0 active sessions and 1 drain abort", st)
	}
	if _, err := c.Exec(`SELECT a FROM t`); err == nil {
		t.Fatal("reaped connection still served a statement")
	}

	c2 := dial(t, addr)
	if res := clientExec(t, c2, `SELECT a FROM t WHERE a = 7`); len(res.Rows) != 0 {
		t.Fatalf("reaped txn leaked rows: %+v", res.Rows)
	}
}

// panicEngine panics on a marker row, simulating an executor bug.
type panicEngine struct{ sql.Engine }

func (e panicEngine) Begin() sql.Txn { return panicTxn{e.Engine.Begin()} }

type panicTxn struct{ sql.Txn }

func (t panicTxn) Insert(table string, r btrim.Row) error {
	if len(r) > 0 && r[0].Int() == 666 {
		panic("injected executor panic")
	}
	return t.Txn.Insert(table, r)
}

func TestServerPanicIsolation(t *testing.T) {
	srv, addr := startServerWith(t, panicEngine{memEngine(t)}, Config{})
	c := dial(t, addr)
	clientExec(t, c,
		`CREATE TABLE t (a INT, PRIMARY KEY (a))`,
		`INSERT INTO t VALUES (1)`,
	)

	// The panicking statement becomes a typed internal error; the
	// connection and the rest of the server survive.
	_, err := c.Exec(`INSERT INTO t VALUES (666)`)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("panicking statement: %v, want ErrInternal", err)
	}
	if IsRetryable(err) {
		t.Fatalf("internal error must not be retryable: %v", err)
	}
	if res := clientExec(t, c, `SELECT a FROM t WHERE a = 1`); len(res.Rows) != 1 {
		t.Fatalf("session unusable after recovered panic: %+v", res.Rows)
	}

	// A panic mid-transaction resets the session: the block is gone and
	// its writes rolled back.
	clientExec(t, c, `BEGIN`, `INSERT INTO t VALUES (2)`)
	if _, err := c.Exec(`INSERT INTO t VALUES (666)`); !errors.Is(err, ErrInternal) {
		t.Fatalf("panic in txn: %v", err)
	}
	if _, err := c.Exec(`COMMIT`); !errors.Is(err, sql.ErrNoTxn) {
		t.Fatalf("COMMIT after panic reset: %v, want ErrNoTxn", err)
	}
	if res := clientExec(t, c, `SELECT a FROM t WHERE a = 2`); len(res.Rows) != 0 {
		t.Fatalf("panicked txn leaked rows: %+v", res.Rows)
	}
	if got := srv.Stats().PanicRecoveries; got < 2 {
		t.Fatalf("panic recoveries = %d, want >= 2", got)
	}
}

func TestServerOversizedFrameSurvival(t *testing.T) {
	srv, addr := startServerWith(t, memEngine(t), Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw := bufio.NewWriterSize(conn, 1<<20)
	br := bufio.NewReader(conn)

	// A frame over the limit: header plus MaxFrame+1 payload bytes. The
	// server must drain it, answer with the typed error, and keep the
	// connection frame-aligned.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := bw.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	junk := make([]byte, 1<<20)
	for sent := 0; sent < MaxFrame+1; {
		n := len(junk)
		if rest := MaxFrame + 1 - sent; rest < n {
			n = rest
		}
		if _, err := bw.Write(junk[:n]); err != nil {
			t.Fatal(err)
		}
		sent += n
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(br, nil)
	if err != nil {
		t.Fatalf("reading oversize response: %v", err)
	}
	if _, err := decodeResponse(resp); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: %v, want ErrFrameTooLarge", err)
	}

	// The same connection still serves ordinary statements.
	if err := writeFrame(bw, []byte(`SHOW TABLES`)); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err = readFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := decodeResponse(resp); err != nil || res == nil {
		t.Fatalf("statement after oversize: res=%v err=%v", res, err)
	}
	if got := srv.Stats().OversizedFrames; got != 1 {
		t.Fatalf("oversized frames = %d, want 1", got)
	}
}

// TestServerNoGoroutineLeak churns connections through every limit —
// rejections, reaps, normal closes — then shuts down and requires the
// goroutine count to return to its baseline.
func TestServerNoGoroutineLeak(t *testing.T) {
	eng := memEngine(t)
	baseline := runtime.NumGoroutine()

	srv := NewWithConfig(eng, Config{
		MaxConns:         4,
		StatementTimeout: time.Second,
		IdleTimeout:      100 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	first, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := first.Exec(`CREATE TABLE t (a INT, PRIMARY KEY (a))`); err != nil {
		t.Fatal(err)
	}

	// Concurrent churn: more dialers than slots, so some are rejected;
	// one dialer goes idle and is reaped.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				return
			}
			defer c.Close()
			if w == 0 {
				time.Sleep(300 * time.Millisecond) // idle: reaped server-side
				return
			}
			for i := 0; i < 5; i++ {
				_, err := c.Exec(`SELECT a FROM t WHERE a = 1`)
				if err != nil && !IsRetryable(err) {
					return // transport error after a reject: expected
				}
			}
		}(w)
	}
	wg.Wait()
	_ = first.Close()

	shutdownServer(t, srv, served)

	// Every accept, session, and reject goroutine must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
