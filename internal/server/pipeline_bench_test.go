package server

import (
	"net"
	"testing"

	"repro/btrim"
	"repro/internal/sql"
)

// BenchmarkPipelinedTxn prices one pipelined transaction frame (BEGIN +
// two binds + COMMIT) end to end over loopback — the unit the
// tpccbench wire path repeats. Run with -cpuprofile to see where the
// wire machinery spends.
func BenchmarkPipelinedTxn(b *testing.B) {
	db, err := btrim.Open(btrim.Config{IMRSCacheBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	srv := New(sql.WrapDB(db))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	b.Cleanup(func() { _ = ln.Close() })

	c, err := Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec(`CREATE TABLE acct (id INT, bal FLOAT, PRIMARY KEY (id))`); err != nil {
		b.Fatal(err)
	}
	if _, err := c.Exec(`INSERT INTO acct VALUES (1, 100), (2, 100)`); err != nil {
		b.Fatal(err)
	}
	p := c.Pipeline()
	p.QueuePrepare("pay", `UPDATE acct SET bal = bal + ? WHERE id = ?`)
	if res, err := p.Run(); err != nil || res[0].Err != nil {
		b.Fatalf("%v %+v", err, res)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Queue("BEGIN")
		p.QueueExecute("pay", btrim.Float64(1), btrim.Int64(1))
		p.QueueExecute("pay", btrim.Float64(1), btrim.Int64(2))
		p.Queue("COMMIT")
		results, err := p.Run()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
