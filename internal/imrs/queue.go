package imrs

import "sync"

// Queue is one partition-level relaxed LRU queue (paper Section VI-B).
// Entries are pushed at the tail as they enter the IMRS (by the GC
// threads, piggybacking on version processing, so the transaction path
// never touches queue locks) and harvested from the head by pack
// threads. A pack thread that finds a hot row at the head moves it back
// to the tail instead of packing it, gradually bubbling cold rows to the
// head — the "relaxed" LRU that avoids per-access shuffling.
type Queue struct {
	mu      sync.Mutex
	head    *Entry
	tail    *Entry
	size    int
	nextSeq uint64
}

// Len returns the number of queued entries.
func (q *Queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// PushTail appends e. An entry already queued is left in place.
func (q *Queue) PushTail(e *Entry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if e.enqueued {
		return
	}
	q.pushTailLocked(e)
}

func (q *Queue) pushTailLocked(e *Entry) {
	e.enqueued = true
	q.nextSeq++
	e.qseq = q.nextSeq
	e.qprev = q.tail
	e.qnext = nil
	if q.tail != nil {
		q.tail.qnext = e
	} else {
		q.head = e
	}
	q.tail = e
	q.size++
}

// PopHead removes and returns the head entry, or nil when empty.
func (q *Queue) PopHead() *Entry {
	q.mu.Lock()
	defer q.mu.Unlock()
	e := q.head
	if e == nil {
		return nil
	}
	q.removeLocked(e)
	return e
}

// Remove unlinks e if it is queued.
func (q *Queue) Remove(e *Entry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !e.enqueued {
		return
	}
	q.removeLocked(e)
}

func (q *Queue) removeLocked(e *Entry) {
	if e.qprev != nil {
		e.qprev.qnext = e.qnext
	} else {
		q.head = e.qnext
	}
	if e.qnext != nil {
		e.qnext.qprev = e.qprev
	} else {
		q.tail = e.qprev
	}
	e.qnext, e.qprev = nil, nil
	e.enqueued = false
	q.size--
}

// MoveToTail re-tails a hot entry found at (or near) the head.
func (q *Queue) MoveToTail(e *Entry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !e.enqueued {
		return
	}
	q.removeLocked(e)
	q.pushTailLocked(e)
}

// Walk visits entries head→tail under the queue lock; fn must be fast
// and must not call back into the queue. Used by the harness's queue
// coldness analysis (paper Figure 8).
func (q *Queue) Walk(fn func(e *Entry) bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for e := q.head; e != nil; e = e.qnext {
		if !fn(e) {
			return
		}
	}
}
