package imrs

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestAllocatorChurnReuse drives alloc/free storms from many goroutines
// (the shape parallel GC reclaim produces: frees landing on shards the
// allocating goroutine never touched) and asserts the two properties
// the fragment manager is trusted for:
//
//  1. Free-listed fragments are actually reused — after a warm-up storm,
//     further storms of the same shape stop grabbing new slabs.
//  2. Used() accounting balances to exactly zero once everything is
//     freed, storm after storm: capacity admission depends on it.
func TestAllocatorChurnReuse(t *testing.T) {
	a := NewAllocator(256 << 20)
	const (
		workers  = 8
		rounds   = 6
		perRound = 400
	)

	storm := func(seed int64) {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed*1000 + int64(w)))
				frags := make([]*Fragment, 0, perRound)
				for i := 0; i < perRound; i++ {
					n := 16 + rng.Intn(2000)
					f, err := a.Alloc(bytes.Repeat([]byte{byte(i)}, n))
					if err != nil {
						t.Errorf("alloc %d bytes: %v", n, err)
						return
					}
					frags = append(frags, f)
					// Interleave frees so free lists churn mid-storm, and
					// free out of allocation order.
					if len(frags) > 8 && rng.Intn(2) == 0 {
						j := rng.Intn(len(frags))
						a.Free(frags[j])
						frags[j] = frags[len(frags)-1]
						frags = frags[:len(frags)-1]
					}
				}
				for _, f := range frags {
					a.Free(f)
				}
			}()
		}
		wg.Wait()
	}

	var grabsAfterWarmup int64
	for r := 0; r < rounds; r++ {
		storm(int64(r + 1))
		if used := a.Used(); used != 0 {
			t.Fatalf("round %d: Used() = %d after freeing everything", r, used)
		}
		if a.Frees.Load() != a.Allocs.Load() {
			t.Fatalf("round %d: allocs %d != frees %d", r, a.Allocs.Load(), a.Frees.Load())
		}
		if r == 1 {
			grabsAfterWarmup = a.SlabGrabs.Load()
		}
	}
	// Reuse: the steady-state storms must be served from the free lists.
	// A small tail of grabs is tolerated (goroutines hash to different
	// shards across rounds), but growth proportional to the storm volume
	// means the free lists are being bypassed.
	growth := a.SlabGrabs.Load() - grabsAfterWarmup
	if growth > grabsAfterWarmup/2+2 {
		t.Fatalf("SlabGrabs did not plateau: %d after warm-up, %d more over %d steady rounds",
			grabsAfterWarmup, growth, rounds-2)
	}
}

// TestAllocFuncInPlace checks the direct-encode entry point: the fill
// callback writes straight into the fragment (no copy), the payload
// round-trips, and the overflow fallback (fill outgrowing the estimate)
// still yields a correct fragment with balanced accounting.
func TestAllocFuncInPlace(t *testing.T) {
	a := NewAllocator(1 << 20)

	payload := []byte("hello fragment world")
	f, err := a.AllocFunc(len(payload), func(dst []byte) []byte {
		if cap(dst) < len(payload) {
			t.Fatalf("fill got cap %d, want >= %d", cap(dst), len(payload))
		}
		return append(dst, payload...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Bytes(), payload) {
		t.Fatalf("payload mismatch: %q", f.Bytes())
	}
	// In-place: the fragment's backing array holds the payload directly.
	if &f.Bytes()[0] != &f.buf[0] {
		t.Fatal("payload not written in place")
	}
	a.Free(f)

	// Overflow fallback: fill appends more than the declared size.
	big := bytes.Repeat([]byte("x"), 500)
	f2, err := a.AllocFunc(10, func(dst []byte) []byte { return append(dst, big...) })
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f2.Bytes(), big) {
		t.Fatal("overflowing fill lost data")
	}
	a.Free(f2)
	if used := a.Used(); used != 0 {
		t.Fatalf("Used() = %d after frees", used)
	}

	// Short fill: returning less than the estimate is fine too.
	f3, err := a.AllocFunc(100, func(dst []byte) []byte { return append(dst, "tiny"...) })
	if err != nil {
		t.Fatal(err)
	}
	if string(f3.Bytes()) != "tiny" {
		t.Fatalf("short fill payload = %q", f3.Bytes())
	}
	a.Free(f3)

	// Empty fill.
	f4, err := a.AllocFunc(0, func(dst []byte) []byte { return dst })
	if err != nil {
		t.Fatal(err)
	}
	if len(f4.Bytes()) != 0 {
		t.Fatal("empty fill produced payload")
	}
	a.Free(f4)
	if used := a.Used(); used != 0 {
		t.Fatalf("Used() = %d at end", used)
	}
	if a.Frees.Load() != a.Allocs.Load() {
		t.Fatalf("allocs %d != frees %d", a.Allocs.Load(), a.Frees.Load())
	}
}

// Exactness of Used() under concurrent AllocFunc/Free mixes, including
// capacity-limited failures: a failed admission must not leak reserved
// bytes.
func TestAllocatorUsedExactUnderPressure(t *testing.T) {
	a := NewAllocator(64 << 10) // tiny: force ErrCacheFull races
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var frags []*Fragment
			for i := 0; i < 500; i++ {
				n := 32 + rng.Intn(4096)
				f, err := a.AllocFunc(n, func(dst []byte) []byte {
					return append(dst, fmt.Sprintf("%d-%d", w, i)...)
				})
				if err == nil {
					frags = append(frags, f)
				}
				if len(frags) > 4 {
					a.Free(frags[0])
					frags = frags[1:]
				}
			}
			for _, f := range frags {
				a.Free(f)
			}
		}()
	}
	wg.Wait()
	if used := a.Used(); used != 0 {
		t.Fatalf("Used() = %d after freeing everything", used)
	}
}
