package imrs

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAllocatorAccountingProperty: for any sequence of allocs and frees,
// the allocator's Used() equals the sum of class sizes of outstanding
// fragments, and frees return exactly what was accounted.
func TestAllocatorAccountingProperty(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		a := NewAllocator(8 << 20)
		rng := rand.New(rand.NewSource(seed))
		var live []*Fragment
		var expect int64
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 { // free
				i := rng.Intn(len(live))
				expect -= int64(live[i].Size())
				a.Free(live[i])
				live = append(live[:i], live[i+1:]...)
			} else { // alloc
				size := 1 + int(op%4000)
				frag, err := a.Alloc(make([]byte, size))
				if err != nil {
					return false
				}
				if frag.Size() < size {
					return false // class below request
				}
				if len(frag.Bytes()) != size {
					return false // payload length wrong
				}
				expect += int64(frag.Size())
				live = append(live, frag)
			}
			if a.Used() != expect {
				return false
			}
		}
		for _, frag := range live {
			a.Free(frag)
		}
		return a.Used() == 0
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestVisibilityMonotoneProperty: for any chain of committed versions at
// increasing timestamps, Visible(snap) returns the newest version with
// commitTS <= snap, for every snap.
func TestVisibilityMonotoneProperty(t *testing.T) {
	f := func(nVersions uint8, probes []uint8) bool {
		n := int(nVersions%8) + 1
		s := NewStore(1 << 20)
		e, err := s.CreateEntry(1, 0, OriginInserted, []byte{0}, 1)
		if err != nil {
			return false
		}
		s.Commit(e.Head(), 1) // version i committed at ts i+1, payload {i}
		for i := 1; i < n; i++ {
			v, err := s.AddVersion(e, []byte{byte(i)}, uint64(i+1))
			if err != nil {
				return false
			}
			s.Commit(v, uint64(i+1))
		}
		for _, p := range probes {
			snap := uint64(p % 12)
			v := e.Visible(snap, 0)
			switch {
			case snap == 0:
				if v != nil {
					return false
				}
			case snap >= uint64(n):
				if v == nil || v.Data()[0] != byte(n-1) {
					return false
				}
			default:
				if v == nil || v.Data()[0] != byte(snap-1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
