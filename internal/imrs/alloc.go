// Package imrs implements the In-Memory Row Store: the fragment memory
// manager (the paper's "high-performance fragment-memory manager ...
// optimized for best-fit low-latency memory allocation and reclamation on
// multiple cores", Section II), row entries with in-memory version
// chains used for timestamp-based snapshot isolation, and per-partition
// footprint accounting consumed by the ILM indexes.
package imrs

import (
	"errors"
	"fmt"
	"sync"
	"unsafe"

	"repro/internal/metrics"
)

// ErrCacheFull reports that an allocation would exceed the configured
// IMRS cache size. The engine reacts by storing the row in the page
// store instead (the paper's reject-new-rows backstop).
var ErrCacheFull = errors.New("imrs: cache full")

// allocShards spreads free lists and slabs across locks.
const allocShards = 16

// slabSize is the unit in which the allocator grabs backing memory.
const slabSize = 1 << 20

// maxFragment is the largest allocatable fragment.
const maxFragment = 64 << 10

// sizeClasses lists fragment classes: 32-byte steps to 1 KB, then ~25%
// geometric growth. Rounding a request up to its class is what turns
// segregated first-fit into best-fit.
var sizeClasses = buildSizeClasses()

func buildSizeClasses() []int {
	var cls []int
	for s := 32; s <= 1024; s += 32 {
		cls = append(cls, s)
	}
	s := 1280
	for s < maxFragment {
		cls = append(cls, s)
		s = s * 5 / 4
		s = (s + 31) &^ 31
	}
	cls = append(cls, maxFragment)
	return cls
}

func classFor(n int) (idx, size int, err error) {
	if n > maxFragment {
		return 0, 0, fmt.Errorf("imrs: fragment of %d bytes exceeds max %d", n, maxFragment)
	}
	// Binary search the first class >= n.
	lo, hi := 0, len(sizeClasses)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if sizeClasses[mid] < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, sizeClasses[lo], nil
}

// Fragment is a chunk of IMRS memory holding one row version image.
type Fragment struct {
	buf   []byte // full class-sized backing
	used  int    // payload length
	class int16
	shard int16
}

// Bytes returns the payload stored in the fragment.
func (f *Fragment) Bytes() []byte { return f.buf[:f.used] }

// Size returns the accounted (class) size of the fragment.
func (f *Fragment) Size() int { return len(f.buf) }

type allocShard struct {
	mu    sync.Mutex
	free  [][]*Fragment // per class free lists
	slab  []byte
	slabP int
}

// Allocator is the fragment memory manager. It accounts used bytes
// exactly (by class size) against a fixed capacity, which is the IMRS
// "cache utilization" every ILM heuristic is defined against.
type Allocator struct {
	capacity int64
	used     metrics.Gauge
	shards   [allocShards]allocShard

	// Stats
	Allocs    metrics.Counter
	Frees     metrics.Counter
	SlabGrabs metrics.Counter
}

// NewAllocator returns an allocator with the given capacity in bytes.
func NewAllocator(capacity int64) *Allocator {
	a := &Allocator{capacity: capacity}
	for i := range a.shards {
		a.shards[i].free = make([][]*Fragment, len(sizeClasses))
	}
	return a
}

// Capacity returns the configured IMRS cache size in bytes.
func (a *Allocator) Capacity() int64 { return a.capacity }

// Used returns the currently allocated bytes (sum of class sizes).
func (a *Allocator) Used() int64 { return a.used.Load() }

// Utilization returns used/capacity in [0,1].
func (a *Allocator) Utilization() float64 {
	return float64(a.Used()) / float64(a.capacity)
}

func shardHint() int {
	var b byte
	p := uintptr(unsafe.Pointer(noescape(&b)))
	h := uint64(p)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h % allocShards)
}

//go:noinline
func noescape(b *byte) *byte { return b }

// grab reserves size bytes of capacity and returns a fragment of class
// idx, reusing a free-listed one when possible. Callers fill f.buf and
// set f.used.
func (a *Allocator) grab(idx, size int) (*Fragment, error) {
	// Reserve capacity first; roll back on failure.
	if a.used.Load()+int64(size) > a.capacity {
		return nil, ErrCacheFull
	}
	a.used.Add(int64(size))
	if a.used.Load() > a.capacity {
		a.used.Add(-int64(size))
		return nil, ErrCacheFull
	}

	si := shardHint()
	s := &a.shards[si]
	s.mu.Lock()
	var f *Fragment
	if n := len(s.free[idx]); n > 0 {
		f = s.free[idx][n-1]
		s.free[idx] = s.free[idx][:n-1]
	} else {
		if len(s.slab)-s.slabP < size {
			s.slab = make([]byte, slabSize)
			s.slabP = 0
			a.SlabGrabs.Inc()
		}
		f = &Fragment{buf: s.slab[s.slabP : s.slabP+size : s.slabP+size], class: int16(idx), shard: int16(si)}
		s.slabP += size
	}
	s.mu.Unlock()
	a.Allocs.Inc()
	return f, nil
}

// Alloc returns a fragment holding a copy of data, or ErrCacheFull.
func (a *Allocator) Alloc(data []byte) (*Fragment, error) {
	idx, size, err := classFor(len(data))
	if err != nil {
		return nil, err
	}
	f, err := a.grab(idx, size)
	if err != nil {
		return nil, err
	}
	f.used = copy(f.buf, data)
	return f, nil
}

// AllocFunc returns a fragment of exactly n payload bytes filled in
// place by fill, saving the encode-into-scratch-then-copy of Alloc on
// the DML hot path. fill receives the fragment's zero-length payload
// slice (capacity n) and must return the appended result; if it grew
// past n (caller's size estimate was wrong) the payload is copied back
// defensively and the fragment is reclassed on the next free/alloc
// cycle, so correctness never depends on the estimate.
func (a *Allocator) AllocFunc(n int, fill func(dst []byte) []byte) (*Fragment, error) {
	idx, size, err := classFor(n)
	if err != nil {
		return nil, err
	}
	f, err := a.grab(idx, size)
	if err != nil {
		return nil, err
	}
	out := fill(f.buf[:0:n])
	if len(out) == 0 {
		f.used = 0
		return f, nil
	}
	if len(out) <= n && &out[0] == &f.buf[0] {
		f.used = len(out)
		return f, nil
	}
	// fill outgrew the fragment: fall back to a correctly sized copy.
	a.Free(f)
	return a.Alloc(out)
}

// Free returns a fragment to its shard's free list.
func (a *Allocator) Free(f *Fragment) {
	if f == nil {
		return
	}
	s := &a.shards[f.shard]
	s.mu.Lock()
	s.free[f.class] = append(s.free[f.class], f)
	s.mu.Unlock()
	a.used.Add(-int64(len(f.buf)))
	a.Frees.Inc()
}
