package imrs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/rid"
)

// Origin records which operation brought a row into the IMRS. The pack
// subsystem keeps one relaxed-LRU queue per partition per origin (paper
// Section VI-B), because hotness characteristics differ per origin.
type Origin uint8

// Row origins.
const (
	OriginInserted Origin = iota // fresh insert, no page-store footprint
	OriginMigrated               // updated from page store into the IMRS
	OriginCached                 // selected from page store and cached
)

// NumOrigins is the number of Origin values.
const NumOrigins = 3

// String implements fmt.Stringer.
func (o Origin) String() string {
	switch o {
	case OriginInserted:
		return "inserted"
	case OriginMigrated:
		return "migrated"
	case OriginCached:
		return "cached"
	default:
		return fmt.Sprintf("origin(%d)", uint8(o))
	}
}

// Version is one image of a row in the IMRS version chain. A version
// with commitTS 0 is uncommitted and owned by TxnID (writers are
// serialized per row by the lock manager, so at most one uncommitted
// version exists per entry).
type Version struct {
	// frag is atomic: IMRS-GC frees superseded versions' fragments while
	// readers and pack threads may still be walking the chain.
	frag     atomic.Pointer[Fragment]
	commitTS atomic.Uint64
	TxnID    uint64
	Deleted  bool
	older    atomic.Pointer[Version]
}

// Older returns the next-older version in the chain, or nil.
func (v *Version) Older() *Version { return v.older.Load() }

// TruncateOlder severs the chain below v. IMRS-GC calls it once every
// version below v is unreadable by any active snapshot.
func (v *Version) TruncateOlder() { v.older.Store(nil) }

// Data returns the row image (nil for delete tombstones and reclaimed
// versions).
func (v *Version) Data() []byte {
	f := v.frag.Load()
	if f == nil {
		return nil
	}
	return f.Bytes()
}

// CommitTS returns the version's commit timestamp (0 if uncommitted).
func (v *Version) CommitTS() uint64 { return v.commitTS.Load() }

// Committed reports whether the version has committed.
func (v *Version) Committed() bool { return v.commitTS.Load() != 0 }

// Size returns the accounted fragment size (0 for tombstones and
// reclaimed versions).
func (v *Version) Size() int {
	f := v.frag.Load()
	if f == nil {
		return 0
	}
	return f.Size()
}

// Entry is an IMRS-resident row: a RID, the version chain, a loose
// last-access timestamp (commit-timestamp units, per the paper's TSF),
// and intrusive linkage for the pack subsystem's relaxed LRU queues.
type Entry struct {
	RID    rid.RID
	Part   rid.PartitionID
	Origin Origin

	head       atomic.Pointer[Version]
	lastAccess atomic.Uint64

	// Pack-queue intrusive linkage; guarded by the owning queue's mutex.
	// qseq is a monotone enqueue stamp used by queue-position analyses.
	qnext, qprev *Entry
	enqueued     bool
	qseq         uint64

	// packed marks entries relocated out of the IMRS (or fully deleted);
	// lookups treat packed entries as absent.
	packed atomic.Bool

	// dirty marks entries whose newest image differs from (or does not
	// exist in) the page store: inserted and migrated rows always, cached
	// rows once updated. Pack writes dirty entries back; clean cached
	// entries are simply dropped.
	dirty atomic.Bool
}

// MarkDirty flags the entry as diverged from the page store.
func (e *Entry) MarkDirty() { e.dirty.Store(true) }

// Dirty reports whether pack must write the entry back.
func (e *Entry) Dirty() bool { return e.dirty.Load() }

// Head returns the newest version (possibly uncommitted).
func (e *Entry) Head() *Version { return e.head.Load() }

// Touch advances the entry's last-access timestamp to ts if newer. Both
// SELECT and UPDATE accesses count (paper Section VI-D); deletes do not.
func (e *Entry) Touch(ts uint64) {
	for {
		cur := e.lastAccess.Load()
		if cur >= ts || e.lastAccess.CompareAndSwap(cur, ts) {
			return
		}
	}
}

// LastAccess returns the loose last-access timestamp.
func (e *Entry) LastAccess() uint64 { return e.lastAccess.Load() }

// MarkPacked flags the entry as no longer IMRS-resident. It reports
// whether this call made the transition (false if already packed).
func (e *Entry) MarkPacked() bool { return !e.packed.Swap(true) }

// Packed reports whether the entry has been packed/removed.
func (e *Entry) Packed() bool { return e.packed.Load() }

// Visible returns the version a reader at snapshot snap should see, or
// nil when the row is invisible (not yet committed for this snapshot, or
// deleted). A reader that is itself transaction selfTxn sees its own
// uncommitted version.
func (e *Entry) Visible(snap uint64, selfTxn uint64) *Version {
	for v := e.head.Load(); v != nil; v = v.older.Load() {
		ts := v.commitTS.Load()
		if ts == 0 {
			if selfTxn != 0 && v.TxnID == selfTxn {
				if v.Deleted {
					return nil
				}
				return v
			}
			continue
		}
		if ts <= snap {
			if v.Deleted {
				return nil
			}
			return v
		}
	}
	return nil
}

// LiveBytes sums the accounted fragment sizes of all versions currently
// chained on the entry.
func (e *Entry) LiveBytes() int {
	n := 0
	for v := e.head.Load(); v != nil; v = v.older.Load() {
		n += v.Size()
	}
	return n
}

// PartStats is the per-partition IMRS footprint, feeding the paper's
// Cache Utilization Index and the per-table footprint figures.
type PartStats struct {
	Rows  metrics.Gauge // live IMRS entries
	Bytes metrics.Gauge // accounted fragment bytes
}

// Store is the IMRS: the fragment allocator plus entry/version life
// cycle and per-partition accounting. Entries are indexed externally by
// the RID-Map.
type Store struct {
	alloc *Allocator

	mu    sync.RWMutex
	parts map[rid.PartitionID]*PartStats

	rows metrics.Gauge
}

// NewStore creates a store over an allocator of the given capacity.
func NewStore(capacityBytes int64) *Store {
	return &Store{
		alloc: NewAllocator(capacityBytes),
		parts: make(map[rid.PartitionID]*PartStats),
	}
}

// Allocator exposes the fragment memory manager.
func (s *Store) Allocator() *Allocator { return s.alloc }

// Rows returns the number of live IMRS entries.
func (s *Store) Rows() int64 { return s.rows.Load() }

// Part returns (creating on first use) the stats block for a partition.
func (s *Store) Part(p rid.PartitionID) *PartStats {
	s.mu.RLock()
	ps, ok := s.parts[p]
	s.mu.RUnlock()
	if ok {
		return ps
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ps, ok = s.parts[p]; ok {
		return ps
	}
	ps = &PartStats{}
	s.parts[p] = ps
	return ps
}

// Partitions calls fn for every partition with IMRS state.
func (s *Store) Partitions(fn func(rid.PartitionID, *PartStats)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for p, ps := range s.parts {
		fn(p, ps)
	}
}

// CreateEntry makes a new IMRS entry whose first (uncommitted) version
// holds data. The caller publishes it in the RID map and commits or
// aborts it later.
func (s *Store) CreateEntry(r rid.RID, part rid.PartitionID, origin Origin, data []byte, txnID uint64) (*Entry, error) {
	frag, err := s.alloc.Alloc(data)
	if err != nil {
		return nil, err
	}
	e := &Entry{RID: r, Part: part, Origin: origin}
	v := &Version{TxnID: txnID}
	v.frag.Store(frag)
	e.head.Store(v)
	ps := s.Part(part)
	ps.Rows.Add(1)
	ps.Bytes.Add(int64(frag.Size()))
	s.rows.Add(1)
	return e, nil
}

// CreateEntryFunc is CreateEntry with the payload encoded in place by
// fill (see Allocator.AllocFunc): one fragment allocation, no
// intermediate encode buffer.
func (s *Store) CreateEntryFunc(r rid.RID, part rid.PartitionID, origin Origin, size int, fill func(dst []byte) []byte, txnID uint64) (*Entry, error) {
	frag, err := s.alloc.AllocFunc(size, fill)
	if err != nil {
		return nil, err
	}
	e := &Entry{RID: r, Part: part, Origin: origin}
	v := &Version{TxnID: txnID}
	v.frag.Store(frag)
	e.head.Store(v)
	ps := s.Part(part)
	ps.Rows.Add(1)
	ps.Bytes.Add(int64(frag.Size()))
	s.rows.Add(1)
	return e, nil
}

// AddVersion pushes a new uncommitted version holding data onto e.
// The caller must hold e's row lock.
func (s *Store) AddVersion(e *Entry, data []byte, txnID uint64) (*Version, error) {
	frag, err := s.alloc.Alloc(data)
	if err != nil {
		return nil, err
	}
	v := &Version{TxnID: txnID}
	v.frag.Store(frag)
	v.older.Store(e.head.Load())
	e.head.Store(v)
	s.Part(e.Part).Bytes.Add(int64(frag.Size()))
	return v, nil
}

// AddVersionFunc is AddVersion with the payload encoded in place by
// fill (see Allocator.AllocFunc). The caller must hold e's row lock.
func (s *Store) AddVersionFunc(e *Entry, size int, fill func(dst []byte) []byte, txnID uint64) (*Version, error) {
	frag, err := s.alloc.AllocFunc(size, fill)
	if err != nil {
		return nil, err
	}
	v := &Version{TxnID: txnID}
	v.frag.Store(frag)
	v.older.Store(e.head.Load())
	e.head.Store(v)
	s.Part(e.Part).Bytes.Add(int64(frag.Size()))
	return v, nil
}

// AddTombstone pushes an uncommitted delete marker onto e. The caller
// must hold e's row lock.
func (s *Store) AddTombstone(e *Entry, txnID uint64) *Version {
	v := &Version{TxnID: txnID, Deleted: true}
	v.older.Store(e.head.Load())
	e.head.Store(v)
	return v
}

// Commit stamps v with commit timestamp ts, making it visible.
func (s *Store) Commit(v *Version, ts uint64) { v.commitTS.Store(ts) }

// AbortVersion unlinks an uncommitted head version from e, releasing its
// fragment. The caller must hold e's row lock. It reports whether the
// entry still has any version (false means the entry was insert-aborted
// and should be unpublished).
func (s *Store) AbortVersion(e *Entry, v *Version) bool {
	if e.head.Load() != v {
		panic("imrs: abort of non-head version")
	}
	older := v.older.Load()
	e.head.Store(older)
	if f := v.frag.Swap(nil); f != nil {
		s.Part(e.Part).Bytes.Add(-int64(f.Size()))
		s.alloc.Free(f)
	}
	if older == nil {
		s.dropEntryAccounting(e)
		return false
	}
	return true
}

// FreeVersion releases a superseded committed version's fragment (called
// by IMRS-GC once no snapshot can read it).
func (s *Store) FreeVersion(part rid.PartitionID, v *Version) {
	f := v.frag.Swap(nil)
	if f == nil {
		return
	}
	s.Part(part).Bytes.Add(-int64(f.Size()))
	s.alloc.Free(f)
}

// RemoveEntry releases every remaining version of e (pack or
// delete-GC). The entry must already be unpublished from the RID map.
func (s *Store) RemoveEntry(e *Entry) {
	for v := e.head.Load(); v != nil; v = v.older.Load() {
		if f := v.frag.Swap(nil); f != nil {
			s.Part(e.Part).Bytes.Add(-int64(f.Size()))
			s.alloc.Free(f)
		}
	}
	e.head.Store(nil)
	s.dropEntryAccounting(e)
}

func (s *Store) dropEntryAccounting(e *Entry) {
	s.Part(e.Part).Rows.Add(-1)
	s.rows.Add(-1)
}
