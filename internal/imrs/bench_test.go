package imrs

import (
	"testing"

	"repro/internal/rid"
)

func BenchmarkAllocFree(b *testing.B) {
	a := NewAllocator(1 << 30)
	data := make([]byte, 200)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			f, err := a.Alloc(data)
			if err != nil {
				b.Fatal(err)
			}
			a.Free(f)
		}
	})
}

func BenchmarkVersionChainRead(b *testing.B) {
	s := NewStore(1 << 20)
	e, err := s.CreateEntry(rid.NewVirtual(1, 1), 1, OriginInserted, []byte("payload"), 1)
	if err != nil {
		b.Fatal(err)
	}
	s.Commit(e.Head(), 1)
	for i := uint64(2); i <= 4; i++ {
		v, err := s.AddVersion(e, []byte("payload"), i)
		if err != nil {
			b.Fatal(err)
		}
		s.Commit(v, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := e.Visible(2, 0); v == nil {
			b.Fatal("version lost")
		}
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	var q Queue
	entries := make([]*Entry, 1024)
	for i := range entries {
		entries[i] = &Entry{RID: rid.NewVirtual(1, uint64(i))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := entries[i%len(entries)]
		q.PushTail(e)
		q.PopHead()
	}
}
