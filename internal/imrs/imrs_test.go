package imrs

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestSizeClassesMonotone(t *testing.T) {
	for i := 1; i < len(sizeClasses); i++ {
		if sizeClasses[i] <= sizeClasses[i-1] {
			t.Fatalf("classes not increasing at %d: %v", i, sizeClasses[i-1:i+1])
		}
	}
	if sizeClasses[len(sizeClasses)-1] != maxFragment {
		t.Fatalf("last class %d != max %d", sizeClasses[len(sizeClasses)-1], maxFragment)
	}
}

func TestClassForProperty(t *testing.T) {
	f := func(n uint16) bool {
		size := int(n)
		if size == 0 {
			size = 1
		}
		_, cls, err := classFor(size)
		if err != nil {
			return false
		}
		return cls >= size && cls <= maxFragment
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := classFor(maxFragment + 1); err == nil {
		t.Fatal("oversized classFor should fail")
	}
}

func TestAllocFreeAccounting(t *testing.T) {
	a := NewAllocator(1 << 20)
	f1, err := a.Alloc(bytes.Repeat([]byte("x"), 100))
	if err != nil {
		t.Fatal(err)
	}
	if string(f1.Bytes()) != string(bytes.Repeat([]byte("x"), 100)) {
		t.Fatal("fragment content wrong")
	}
	if f1.Size() < 100 {
		t.Fatal("class size below request")
	}
	used := a.Used()
	if used != int64(f1.Size()) {
		t.Fatalf("Used = %d, want %d", used, f1.Size())
	}
	a.Free(f1)
	if a.Used() != 0 {
		t.Fatalf("Used after free = %d", a.Used())
	}
	// Freed fragment is recycled for a same-class alloc on the same shard;
	// allocate many to make recycling overwhelmingly likely regardless of
	// shard hints.
	for i := 0; i < 100; i++ {
		f, err := a.Alloc(make([]byte, 100))
		if err != nil {
			t.Fatal(err)
		}
		a.Free(f)
	}
}

func TestAllocCapacityEnforced(t *testing.T) {
	a := NewAllocator(1024)
	var frags []*Fragment
	for {
		f, err := a.Alloc(make([]byte, 200))
		if err == ErrCacheFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frags = append(frags, f)
	}
	if len(frags) == 0 {
		t.Fatal("nothing allocated")
	}
	if a.Used() > 1024 {
		t.Fatalf("Used %d exceeds capacity", a.Used())
	}
	a.Free(frags[0])
	if _, err := a.Alloc(make([]byte, 200)); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestAllocTooLarge(t *testing.T) {
	a := NewAllocator(1 << 30)
	if _, err := a.Alloc(make([]byte, maxFragment+1)); err == nil {
		t.Fatal("oversized alloc should fail")
	}
}

func TestAllocConcurrent(t *testing.T) {
	a := NewAllocator(64 << 20)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var held []*Fragment
			for i := 0; i < 2000; i++ {
				if len(held) > 0 && rng.Intn(2) == 0 {
					n := rng.Intn(len(held))
					a.Free(held[n])
					held = append(held[:n], held[n+1:]...)
					continue
				}
				data := make([]byte, 1+rng.Intn(2000))
				for j := range data {
					data[j] = byte(seed)
				}
				f, err := a.Alloc(data)
				if err != nil {
					t.Error(err)
					return
				}
				held = append(held, f)
			}
			for _, f := range held {
				for _, b := range f.Bytes() {
					if b != byte(seed) {
						t.Error("fragment content corrupted across goroutines")
						return
					}
				}
				a.Free(f)
			}
		}(int64(w))
	}
	wg.Wait()
	if a.Used() != 0 {
		t.Fatalf("leaked %d bytes", a.Used())
	}
}

func TestEntryVisibility(t *testing.T) {
	s := NewStore(1 << 20)
	e, err := s.CreateEntry(1, 0, OriginInserted, []byte("v1"), 100)
	if err != nil {
		t.Fatal(err)
	}
	// Uncommitted: invisible to others, visible to self.
	if got := e.Visible(10, 0); got != nil {
		t.Fatal("uncommitted version visible to stranger")
	}
	if got := e.Visible(10, 100); got == nil || string(got.Data()) != "v1" {
		t.Fatal("own uncommitted version not visible to self")
	}
	s.Commit(e.Head(), 5)
	if got := e.Visible(4, 0); got != nil {
		t.Fatal("future version visible to old snapshot")
	}
	if got := e.Visible(5, 0); got == nil || string(got.Data()) != "v1" {
		t.Fatal("committed version invisible at its TS")
	}

	// New version by txn 200.
	v2, err := s.AddVersion(e, []byte("v2"), 200)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Visible(9, 0); got == nil || string(got.Data()) != "v1" {
		t.Fatal("readers should still see v1")
	}
	s.Commit(v2, 8)
	if got := e.Visible(9, 0); got == nil || string(got.Data()) != "v2" {
		t.Fatal("readers at 9 should see v2")
	}
	if got := e.Visible(7, 0); got == nil || string(got.Data()) != "v1" {
		t.Fatal("readers at 7 should see v1")
	}

	// Tombstone.
	v3 := s.AddTombstone(e, 300)
	s.Commit(v3, 12)
	if got := e.Visible(12, 0); got != nil {
		t.Fatal("deleted row visible")
	}
	if got := e.Visible(11, 0); got == nil || string(got.Data()) != "v2" {
		t.Fatal("pre-delete snapshot should see v2")
	}
}

func TestAbortVersion(t *testing.T) {
	s := NewStore(1 << 20)
	e, err := s.CreateEntry(1, 2, OriginMigrated, []byte("v1"), 100)
	if err != nil {
		t.Fatal(err)
	}
	s.Commit(e.Head(), 5)
	bytesBefore := s.Part(2).Bytes.Load()

	v2, err := s.AddVersion(e, []byte("v2-bigger-than-v1"), 200)
	if err != nil {
		t.Fatal(err)
	}
	if still := s.AbortVersion(e, v2); !still {
		t.Fatal("entry should survive aborting a non-first version")
	}
	if got := e.Visible(10, 0); got == nil || string(got.Data()) != "v1" {
		t.Fatal("abort did not restore v1")
	}
	if s.Part(2).Bytes.Load() != bytesBefore {
		t.Fatal("abort leaked partition bytes")
	}

	// Abort of an insert's first version removes the entry.
	e2, err := s.CreateEntry(2, 2, OriginInserted, []byte("x"), 300)
	if err != nil {
		t.Fatal(err)
	}
	rows := s.Part(2).Rows.Load()
	if still := s.AbortVersion(e2, e2.Head()); still {
		t.Fatal("insert abort should empty the entry")
	}
	if s.Part(2).Rows.Load() != rows-1 {
		t.Fatal("insert abort did not drop row count")
	}
}

func TestRemoveEntryReleasesAll(t *testing.T) {
	s := NewStore(1 << 20)
	e, _ := s.CreateEntry(1, 0, OriginInserted, []byte("v1"), 1)
	s.Commit(e.Head(), 1)
	v2, _ := s.AddVersion(e, []byte("v2"), 2)
	s.Commit(v2, 2)
	if s.Allocator().Used() == 0 {
		t.Fatal("expected usage")
	}
	s.RemoveEntry(e)
	if s.Allocator().Used() != 0 {
		t.Fatalf("RemoveEntry leaked %d bytes", s.Allocator().Used())
	}
	if s.Rows() != 0 || s.Part(0).Rows.Load() != 0 || s.Part(0).Bytes.Load() != 0 {
		t.Fatal("accounting not zeroed")
	}
}

func TestTouchMonotone(t *testing.T) {
	e := &Entry{}
	e.Touch(5)
	e.Touch(3)
	if e.LastAccess() != 5 {
		t.Fatalf("LastAccess = %d, want 5", e.LastAccess())
	}
	e.Touch(9)
	if e.LastAccess() != 9 {
		t.Fatalf("LastAccess = %d, want 9", e.LastAccess())
	}
}

func TestMarkPackedOnce(t *testing.T) {
	e := &Entry{}
	if !e.MarkPacked() {
		t.Fatal("first MarkPacked should win")
	}
	if e.MarkPacked() {
		t.Fatal("second MarkPacked should lose")
	}
	if !e.Packed() {
		t.Fatal("Packed should be true")
	}
}

func TestLiveBytes(t *testing.T) {
	s := NewStore(1 << 20)
	e, _ := s.CreateEntry(1, 0, OriginInserted, make([]byte, 100), 1)
	s.Commit(e.Head(), 1)
	v2, _ := s.AddVersion(e, make([]byte, 200), 2)
	s.Commit(v2, 2)
	want := s.Part(0).Bytes.Load()
	if int64(e.LiveBytes()) != want {
		t.Fatalf("LiveBytes = %d, partition bytes = %d", e.LiveBytes(), want)
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	s := NewStore(8 << 20)
	e, _ := s.CreateEntry(1, 0, OriginInserted, []byte("v0"), 1)
	s.Commit(e.Head(), 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: a bounded burst of versions at increasing TS
		defer wg.Done()
		for ts := uint64(2); ts < 1000; ts++ {
			v, err := s.AddVersion(e, []byte("vX"), ts)
			if err != nil {
				t.Error(err)
				return
			}
			s.Commit(v, ts)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				if v := e.Visible(1, 0); v == nil || string(v.Data()) != "v0" {
					t.Error("snapshot 1 must always see v0")
					return
				}
			}
		}()
	}
	wg.Wait()
}
