package imrs

import (
	"testing"

	"repro/internal/rid"
)

func qe(i uint64) *Entry { return &Entry{RID: rid.NewVirtual(0, i)} }

func TestQueueFIFO(t *testing.T) {
	var q Queue
	es := []*Entry{qe(1), qe(2), qe(3)}
	for _, e := range es {
		q.PushTail(e)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 3; i++ {
		got := q.PopHead()
		if got != es[i] {
			t.Fatalf("pop %d: wrong entry", i)
		}
	}
	if q.PopHead() != nil {
		t.Fatal("pop of empty queue returned entry")
	}
}

func TestQueueDoubleEnqueueIgnored(t *testing.T) {
	var q Queue
	e := qe(1)
	q.PushTail(e)
	q.PushTail(e)
	if q.Len() != 1 {
		t.Fatalf("Len = %d after double push", q.Len())
	}
}

func TestQueueRemoveMiddle(t *testing.T) {
	var q Queue
	es := []*Entry{qe(1), qe(2), qe(3)}
	for _, e := range es {
		q.PushTail(e)
	}
	q.Remove(es[1])
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.PopHead() != es[0] || q.PopHead() != es[2] {
		t.Fatal("remaining order wrong")
	}
	// Removing an unqueued entry is a no-op.
	q.Remove(es[1])
}

func TestQueueMoveToTail(t *testing.T) {
	var q Queue
	es := []*Entry{qe(1), qe(2), qe(3)}
	for _, e := range es {
		q.PushTail(e)
	}
	q.MoveToTail(es[0])
	want := []*Entry{es[1], es[2], es[0]}
	for i, w := range want {
		if got := q.PopHead(); got != w {
			t.Fatalf("after MoveToTail pop %d wrong", i)
		}
	}
	// MoveToTail of an unqueued entry is a no-op.
	q.MoveToTail(es[0])
	if q.Len() != 0 {
		t.Fatal("no-op MoveToTail changed queue")
	}
}

func TestQueueWalkOrder(t *testing.T) {
	var q Queue
	for i := uint64(0); i < 10; i++ {
		q.PushTail(qe(i))
	}
	var seqs []uint64
	q.Walk(func(e *Entry) bool {
		seqs = append(seqs, e.RID.Seq())
		return true
	})
	for i, s := range seqs {
		if s != uint64(i) {
			t.Fatalf("walk order: %v", seqs)
		}
	}
	// Early stop.
	n := 0
	q.Walk(func(*Entry) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestQueueReEnqueueAfterPop(t *testing.T) {
	var q Queue
	e := qe(1)
	q.PushTail(e)
	if q.PopHead() != e {
		t.Fatal("pop failed")
	}
	q.PushTail(e)
	if q.Len() != 1 || q.PopHead() != e {
		t.Fatal("re-enqueue after pop failed")
	}
}
