package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/rid"
	"repro/internal/storage/buffer"
	"repro/internal/storage/disk"
)

// stressPool builds a deliberately tiny pool so traversals constantly
// miss and evict — the latch-coupling path that matters. No-steal lets
// the pool grow instead of failing when every frame is pinned by a
// concurrent traversal.
func stressPool(t testing.TB, frames int) *buffer.Pool {
	t.Helper()
	dev := disk.NewMemDevice(0, 0)
	pool, err := buffer.NewPool(dev, frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	pool.SetNoSteal(true)
	return pool
}

// stressKey pads keys to 64 bytes so a few thousand of them spread over
// far more leaves than the stress pool has frames.
func stressKey(i int) []byte {
	b := make([]byte, 64)
	b[0] = 'k'
	binary.BigEndian.PutUint64(b[1:9], uint64(i))
	for j := 9; j < len(b); j++ {
		b[j] = byte('a' + j%13)
	}
	return b
}

// TestStressConcurrent hammers one tree with parallel inserters,
// deleters, point readers, and scanners over an eviction-heavy pool,
// then verifies nothing was lost: every key either survived with its
// exact RID or was provably deleted by its owner.
func TestStressConcurrent(t *testing.T) {
	pool := stressPool(t, 4)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 4
	keysPerOwner := 1200
	readers := 4
	if testing.Short() {
		keysPerOwner = 500
		readers = 2
	}

	// Each writer owns a disjoint key range: inserts all of them, deletes
	// an owner-chosen subset, so the final expected state is exact.
	deleted := make([]map[int]bool, writers)
	var writerWG, bgWG sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		deleted[w] = make(map[int]bool)
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			base := w * keysPerOwner
			for i := 0; i < keysPerOwner; i++ {
				k := base + rng.Intn(keysPerOwner) // racey duplicate attempts
				err := tr.Insert(stressKey(k), rid.RID(k+1))
				if err != nil && !errors.Is(err, ErrDuplicate) {
					t.Errorf("insert %d: %v", k, err)
					return
				}
				// Checkpoint from inside the load too: on GOMAXPROCS=1 the
				// background flusher may never be scheduled, and without
				// clean frames a no-steal pool cannot evict at all.
				if i%127 == 0 {
					if err := pool.FlushAll(); err != nil {
						t.Errorf("flush: %v", err)
						return
					}
				}
			}
			// Fill any gaps the random walk skipped.
			for i := base; i < base+keysPerOwner; i++ {
				err := tr.Insert(stressKey(i), rid.RID(i+1))
				if err != nil && !errors.Is(err, ErrDuplicate) {
					t.Errorf("insert %d: %v", i, err)
					return
				}
			}
			// Delete a subset; interleave updates on survivors.
			for i := base; i < base+keysPerOwner; i++ {
				switch i % 3 {
				case 0:
					if _, found, err := tr.Delete(stressKey(i)); err != nil || !found {
						t.Errorf("delete %d: found=%v err=%v", i, found, err)
						return
					}
					deleted[w][i] = true
				case 1:
					if found, err := tr.Update(stressKey(i), rid.RID(i+1)); err != nil || !found {
						t.Errorf("update %d: found=%v err=%v", i, found, err)
						return
					}
				}
			}
		}(w)
	}

	// Background checkpointer: no-steal never evicts dirty pages, so keep
	// flushing to make frames clean and evictable — that is what forces
	// traversals to re-read pages from the device mid-flight.
	bgWG.Add(1)
	go func() {
		defer bgWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := pool.FlushAll(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
		}
	}()

	// Point readers: any hit must carry the exact RID for its key.
	for r := 0; r < readers; r++ {
		bgWG.Add(1)
		go func(seed int) {
			defer bgWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + seed)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Intn(writers * keysPerOwner)
				got, found, err := tr.Search(stressKey(k))
				if err != nil {
					t.Errorf("search %d: %v", k, err)
					return
				}
				if found && got != rid.RID(k+1) {
					t.Errorf("search %d: rid %d, want %d", k, got, k+1)
					return
				}
			}
		}(r)
	}

	// Scanners: keys must come back in strictly ascending order even
	// while leaves split underneath, and every RID must match its key.
	for s := 0; s < 2; s++ {
		bgWG.Add(1)
		go func() {
			defer bgWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var prev []byte
				err := tr.ScanFrom(nil, func(k []byte, r rid.RID) bool {
					if prev != nil && bytes.Compare(k, prev) >= 0 == false {
						t.Errorf("scan went backward: %x after %x", k, prev)
						return false
					}
					if prev != nil && bytes.Equal(k, prev) {
						t.Errorf("scan yielded duplicate key %x", k)
						return false
					}
					i := int(binary.BigEndian.Uint64(k[1:9]))
					if r != rid.RID(i+1) {
						t.Errorf("scan: key %d carries rid %d", i, r)
						return false
					}
					prev = append(prev[:0], k...)
					return true
				})
				if err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		}()
	}

	// Wait for writers, then stop the background readers/scanners.
	writerWG.Wait()
	close(stop)
	bgWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Verify the exact surviving set.
	want := 0
	for w := 0; w < writers; w++ {
		for i := w * keysPerOwner; i < (w+1)*keysPerOwner; i++ {
			k := stressKey(i)
			got, found, err := tr.Search(k)
			if err != nil {
				t.Fatal(err)
			}
			if deleted[w][i] {
				if found {
					t.Fatalf("key %d deleted but still present", i)
				}
				continue
			}
			want++
			if !found {
				t.Fatalf("key %d lost", i)
			}
			if got != rid.RID(i+1) {
				t.Fatalf("key %d: rid %d, want %d", i, got, i+1)
			}
		}
	}
	n, err := tr.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != want {
		t.Fatalf("Count = %d, want %d", n, want)
	}
	if pool.Stats().Evictions.Load() == 0 {
		t.Fatalf("stress pool never evicted — pool too large to exercise fetch-under-latch")
	}
}

// TestStressCoarseMode runs a smaller mixed load with the tree-wide-lock
// baseline enabled, so the benchmark fallback path stays correct too.
func TestStressCoarseMode(t *testing.T) {
	pool := stressPool(t, 4)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetCoarse(true)

	const n = 600
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * n; i < (w+1)*n; i++ {
				if err := tr.Insert(stressKey(i), rid.RID(i+1)); err != nil {
					t.Errorf("insert %d: %v", i, err)
					return
				}
				if _, _, err := tr.Search(stressKey(i)); err != nil {
					t.Errorf("search %d: %v", i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	cnt, err := tr.Count()
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 3*n {
		t.Fatalf("Count = %d, want %d", cnt, 3*n)
	}
}

// TestStressScanDuringSplitStorm aims a scanner at a key range that is
// being split as fast as possible, asserting the pre-existing keys are
// always all observed, in order.
func TestStressScanDuringSplitStorm(t *testing.T) {
	pool := stressPool(t, 4)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}

	// Preload a stable key set the scanner must always see in full.
	const stable = 500
	for i := 0; i < stable; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("stable-%06d", i)), rid.RID(i)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Interleave churn keys between the stable ones to force splits
		// of the leaves the scanner is walking.
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := []byte(fmt.Sprintf("stable-%06d~churn%d", i%stable, i))
			if err := tr.Insert(k, rid.RID(1<<30+i)); err != nil && !errors.Is(err, ErrDuplicate) {
				t.Errorf("churn insert: %v", err)
				return
			}
			i++
		}
	}()

	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	for round := 0; round < rounds; round++ {
		seen := 0
		var prev []byte
		err := tr.ScanFrom([]byte("stable-"), func(k []byte, r rid.RID) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Errorf("scan not strictly ascending: %q after %q", k, prev)
				return false
			}
			prev = append(prev[:0], k...)
			if len(k) == len("stable-000000") {
				seen++
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if t.Failed() {
			break
		}
		if seen != stable {
			t.Fatalf("round %d: scan saw %d/%d stable keys", round, seen, stable)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
}
