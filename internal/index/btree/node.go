// Package btree implements the page-based B+tree indexes of the BTrim
// architecture (paper Section II): keys map to RIDs, and the access
// methods above the tree transparently resolve each RID to the IMRS (via
// the RID map) or to the page store. Leaves are chained for range scans.
//
// Concurrency is latch coupling over the buffer pool's per-frame
// latches (see Tree); no tree-wide lock is held across pool fetches.
// Simplifications relative to a production engine, recorded in DESIGN.md:
// deletes do not rebalance (underflowed nodes persist), and index
// changes are not logged — recovery rebuilds indexes from the base
// tables, which is sound because the heaps and the IMRS are fully
// recovered first.
package btree

import (
	"bytes"
	"encoding/binary"
	"sort"

	"repro/internal/rid"
	"repro/internal/storage/disk"
	"repro/internal/storage/page"
)

// Node byte layout, after the 24-byte generic page header:
//
//	24..27  leftmost child page id (internal nodes only)
//	28..29  number of keys (uint16)
//	30..31  cell data start (cells grow down from the page end)
//	32..    sorted array of uint16 cell pointers
//
// Leaf cell:     [u16 keyLen][key][8-byte RID]
// Internal cell: [u16 keyLen][key][4-byte child page id]
const (
	btOffLeft    = 24
	btOffNumKeys = 28
	btOffCellLow = 30
	btOffPtrs    = 32
	btPtrSize    = 2
	leafValSize  = 8
	innerValSize = 4
	cellKeyLenSz = 2
	noChild      = 0xFFFFFFFF
	// MaxKeySize bounds index keys so several cells always fit per node.
	MaxKeySize = 1024
)

func btInit(pg *page.Page, leaf bool) {
	t := page.TypeBTreeInternal
	if leaf {
		t = page.TypeBTreeLeaf
	}
	pg.Init(t)
	buf := pg.Bytes()
	binary.LittleEndian.PutUint32(buf[btOffLeft:], noChild)
	binary.LittleEndian.PutUint16(buf[btOffNumKeys:], 0)
	setCellLow(buf, disk.PageSize) // cells grow down from the page end
}

// cellLow returns the lowest used cell offset; 0 encodes "page end".
func cellLow(buf []byte) int {
	v := int(binary.LittleEndian.Uint16(buf[btOffCellLow:]))
	if v == 0 {
		return disk.PageSize
	}
	return v
}

func setCellLow(buf []byte, v int) {
	if v == disk.PageSize {
		v = 0
	}
	binary.LittleEndian.PutUint16(buf[btOffCellLow:], uint16(v))
}

func isLeaf(pg *page.Page) bool { return pg.Type() == page.TypeBTreeLeaf }

func numKeys(buf []byte) int {
	return int(binary.LittleEndian.Uint16(buf[btOffNumKeys:]))
}

func setNumKeys(buf []byte, n int) {
	binary.LittleEndian.PutUint16(buf[btOffNumKeys:], uint16(n))
}

func ptrAt(buf []byte, i int) int {
	return int(binary.LittleEndian.Uint16(buf[btOffPtrs+i*btPtrSize:]))
}

func setPtrAt(buf []byte, i, v int) {
	binary.LittleEndian.PutUint16(buf[btOffPtrs+i*btPtrSize:], uint16(v))
}

func keyAt(buf []byte, i int) []byte {
	off := ptrAt(buf, i)
	klen := int(binary.LittleEndian.Uint16(buf[off:]))
	return buf[off+cellKeyLenSz : off+cellKeyLenSz+klen]
}

func leafValAt(buf []byte, i int) rid.RID {
	off := ptrAt(buf, i)
	klen := int(binary.LittleEndian.Uint16(buf[off:]))
	return rid.RID(binary.LittleEndian.Uint64(buf[off+cellKeyLenSz+klen:]))
}

func setLeafValAt(buf []byte, i int, r rid.RID) {
	off := ptrAt(buf, i)
	klen := int(binary.LittleEndian.Uint16(buf[off:]))
	binary.LittleEndian.PutUint64(buf[off+cellKeyLenSz+klen:], uint64(r))
}

func innerChildAt(buf []byte, i int) uint32 {
	off := ptrAt(buf, i)
	klen := int(binary.LittleEndian.Uint16(buf[off:]))
	return binary.LittleEndian.Uint32(buf[off+cellKeyLenSz+klen:])
}

func leftChild(buf []byte) uint32 {
	return binary.LittleEndian.Uint32(buf[btOffLeft:])
}

func setLeftChild(buf []byte, c uint32) {
	binary.LittleEndian.PutUint32(buf[btOffLeft:], c)
}

// childFor returns the child page to descend into for key position pos
// (result of search): pos==0 → leftmost child, else cell pos-1's child.
func childFor(buf []byte, pos int) uint32 {
	if pos == 0 {
		return leftChild(buf)
	}
	return innerChildAt(buf, pos-1)
}

// search finds the first position whose key >= key; found reports exact
// match at that position.
func search(buf []byte, key []byte) (pos int, found bool) {
	n := numKeys(buf)
	pos = sort.Search(n, func(i int) bool {
		return bytes.Compare(keyAt(buf, i), key) >= 0
	})
	found = pos < n && bytes.Equal(keyAt(buf, pos), key)
	return pos, found
}

// descendPos returns the child index for descending with key in an
// internal node: the number of separator keys <= key.
func descendPos(buf []byte, key []byte) int {
	n := numKeys(buf)
	return sort.Search(n, func(i int) bool {
		return bytes.Compare(keyAt(buf, i), key) > 0
	})
}

func freeBytes(buf []byte) int {
	return cellLow(buf) - (btOffPtrs + numKeys(buf)*btPtrSize)
}

func cellSize(keyLen int, leaf bool) int {
	if leaf {
		return cellKeyLenSz + keyLen + leafValSize
	}
	return cellKeyLenSz + keyLen + innerValSize
}

// compactNode rewrites live cells tightly against the page end.
func compactNode(buf []byte) {
	n := numKeys(buf)
	type cellRef struct {
		off  int
		size int
	}
	cells := make([]cellRef, n)
	total := 0
	for i := 0; i < n; i++ {
		off := ptrAt(buf, i)
		klen := int(binary.LittleEndian.Uint16(buf[off:]))
		var sz int
		// Leaf vs internal is not knowable from the cell alone; infer
		// from the page type byte.
		if page.Wrap(buf).Type() == page.TypeBTreeLeaf {
			sz = cellSize(klen, true)
		} else {
			sz = cellSize(klen, false)
		}
		cells[i] = cellRef{off: off, size: sz}
		total += sz
	}
	tmp := make([]byte, 0, total)
	newOffs := make([]int, n)
	at := disk.PageSize - total
	cur := at
	for i := 0; i < n; i++ {
		newOffs[i] = cur
		tmp = append(tmp, buf[cells[i].off:cells[i].off+cells[i].size]...)
		cur += cells[i].size
	}
	copy(buf[at:], tmp)
	for i := 0; i < n; i++ {
		setPtrAt(buf, i, newOffs[i])
	}
	setCellLow(buf, at)
}

// insertCell places a cell (key + value bytes) at sorted position pos.
// It reports false when the node lacks room even after compaction.
func insertCell(buf []byte, pos int, key, val []byte) bool {
	sz := cellKeyLenSz + len(key) + len(val)
	if freeBytes(buf) < sz+btPtrSize {
		compactNode(buf)
		if freeBytes(buf) < sz+btPtrSize {
			return false
		}
	}
	off := cellLow(buf) - sz
	binary.LittleEndian.PutUint16(buf[off:], uint16(len(key)))
	copy(buf[off+cellKeyLenSz:], key)
	copy(buf[off+cellKeyLenSz+len(key):], val)
	setCellLow(buf, off)

	n := numKeys(buf)
	// Shift pointers right of pos.
	copy(buf[btOffPtrs+(pos+1)*btPtrSize:btOffPtrs+(n+1)*btPtrSize],
		buf[btOffPtrs+pos*btPtrSize:btOffPtrs+n*btPtrSize])
	setPtrAt(buf, pos, off)
	setNumKeys(buf, n+1)
	return true
}

// deleteCell removes the cell at pos (its bytes become dead space until
// the next compaction).
func deleteCell(buf []byte, pos int) {
	n := numKeys(buf)
	copy(buf[btOffPtrs+pos*btPtrSize:btOffPtrs+(n-1)*btPtrSize],
		buf[btOffPtrs+(pos+1)*btPtrSize:btOffPtrs+n*btPtrSize])
	setNumKeys(buf, n-1)
}

func u64val(r rid.RID) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(r))
	return b[:]
}

func u32val(c uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], c)
	return b[:]
}
