package btree

import (
	"bytes"
	"fmt"

	"repro/internal/rid"
	"repro/internal/storage/buffer"
	"repro/internal/storage/page"
)

// Item is one key→RID pair for BulkLoad. Keys are unique at this level;
// non-unique indexes append the RID to the key upstream, exactly as they
// do for Insert.
type Item struct {
	Key []byte
	RID rid.RID
}

// childRef is a built node awaiting linkage into its parent: its page id
// and the first key of its subtree (the separator the parent stores).
type childRef struct {
	id    uint32
	first []byte
}

// BulkLoad replaces the tree's content with items, which must be sorted
// ascending with no duplicate keys. Leaves are packed left-to-right and
// chained, then each internal level is built bottom-up — O(pages) page
// writes instead of len(items) root-to-leaf descents, and every written
// page is touched exactly once (recovery's index rebuild is the user).
//
// The tree must be quiescent and logically empty: the previous root is
// abandoned, not freed (page ids are never recycled by the device
// layer, so a leaked empty root is inert). With no items the tree is
// left as it is — an empty tree already has a valid empty leaf root.
func (t *Tree) BulkLoad(items []Item) error {
	if len(items) == 0 {
		return nil
	}
	for i, it := range items {
		if len(it.Key) > MaxKeySize {
			return fmt.Errorf("btree: bulk-load key of %d bytes exceeds max %d", len(it.Key), MaxKeySize)
		}
		if i > 0 {
			switch c := bytes.Compare(items[i-1].Key, it.Key); {
			case c == 0:
				return fmt.Errorf("btree: bulk-load duplicate key at %d: %w", i, ErrDuplicate)
			case c > 0:
				return fmt.Errorf("btree: bulk-load keys out of order at %d", i)
			}
		}
	}

	leaves, err := t.buildLeaves(items)
	if err != nil {
		return err
	}
	level := leaves
	for len(level) > 1 {
		if level, err = t.buildInternalLevel(level); err != nil {
			return err
		}
	}
	t.root.Store(level[0].id)
	return nil
}

// finish marks a just-built node frame dirty and releases it.
func (t *Tree) finish(f *buffer.Frame) {
	f.MarkDirty()
	f.Unlatch(true)
	t.pool.Unpin(f, true)
}

// buildLeaves packs items into a chain of fresh leaf pages and returns
// one childRef per leaf, left to right.
func (t *Tree) buildLeaves(items []Item) ([]childRef, error) {
	newLeaf := func() (uint32, *buffer.Frame, error) {
		id, f, err := t.pool.NewPage(page.TypeBTreeLeaf)
		if err != nil {
			return 0, nil, err
		}
		btInit(f.Page(), true) // Next/Prev start at noChild via page.Init
		return id, f, nil
	}
	id, f, err := newLeaf()
	if err != nil {
		return nil, err
	}
	leaves := []childRef{{id: id, first: items[0].Key}}
	pos := 0
	for _, it := range items {
		if !insertCell(f.Page().Bytes(), pos, it.Key, u64val(it.RID)) {
			nid, nf, err := newLeaf()
			if err != nil {
				t.finish(f)
				return nil, err
			}
			f.Page().SetNext(nid)
			nf.Page().SetPrev(id)
			t.finish(f)
			id, f, pos = nid, nf, 0
			leaves = append(leaves, childRef{id: id, first: it.Key})
			if !insertCell(f.Page().Bytes(), pos, it.Key, u64val(it.RID)) {
				t.finish(f)
				return nil, fmt.Errorf("btree: bulk-load cell does not fit an empty leaf")
			}
		}
		pos++
	}
	t.finish(f)
	return leaves, nil
}

// buildInternalLevel builds one level of internal nodes over children:
// each node's leftmost pointer is its first child, and every subsequent
// child contributes (its first key, its id) as a separator cell — the
// same "separator = first key of the right subtree" convention splits
// maintain.
func (t *Tree) buildInternalLevel(children []childRef) ([]childRef, error) {
	newNode := func(leftmost childRef) (uint32, *buffer.Frame, error) {
		id, f, err := t.pool.NewPage(page.TypeBTreeInternal)
		if err != nil {
			return 0, nil, err
		}
		btInit(f.Page(), false)
		setLeftChild(f.Page().Bytes(), leftmost.id)
		return id, f, nil
	}
	id, f, err := newNode(children[0])
	if err != nil {
		return nil, err
	}
	parents := []childRef{{id: id, first: children[0].first}}
	pos := 0
	for _, c := range children[1:] {
		if insertCell(f.Page().Bytes(), pos, c.first, u32val(c.id)) {
			pos++
			continue
		}
		// Node full: c becomes the leftmost child of the next node and
		// contributes no separator here — its first key moves up as the
		// new node's own separator in the level above.
		t.finish(f)
		if id, f, err = newNode(c); err != nil {
			return nil, err
		}
		parents = append(parents, childRef{id: id, first: c.first})
		pos = 0
	}
	t.finish(f)
	return parents, nil
}
