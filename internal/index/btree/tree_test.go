package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/rid"
	"repro/internal/storage/buffer"
	"repro/internal/storage/disk"
)

func newTree(t *testing.T, frames int) *Tree {
	t.Helper()
	dev := disk.NewMemDevice(0, 0)
	t.Cleanup(func() { dev.Close() })
	pool, err := buffer.NewPool(dev, frames, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func TestInsertSearch(t *testing.T) {
	tr := newTree(t, 64)
	for i := 0; i < 100; i++ {
		if err := tr.Insert(key(i), rid.RID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		r, found, err := tr.Search(key(i))
		if err != nil || !found || r != rid.RID(i+1) {
			t.Fatalf("Search(%d) = %v, %v, %v", i, r, found, err)
		}
	}
	if _, found, _ := tr.Search([]byte("missing")); found {
		t.Fatal("found missing key")
	}
}

func TestDuplicateRejected(t *testing.T) {
	tr := newTree(t, 64)
	if err := tr.Insert(key(1), 1); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(key(1), 2); err != ErrDuplicate {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
	r, _, _ := tr.Search(key(1))
	if r != 1 {
		t.Fatal("duplicate insert changed the value")
	}
}

func TestSplitsManyKeys(t *testing.T) {
	tr := newTree(t, 512)
	const n = 20000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	for _, i := range perm {
		if err := tr.Insert(key(i), rid.RID(i+1)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		r, found, err := tr.Search(key(i))
		if err != nil || !found || r != rid.RID(i+1) {
			t.Fatalf("Search(%d) after splits = %v %v %v", i, r, found, err)
		}
	}
	count, err := tr.Count()
	if err != nil || count != n {
		t.Fatalf("Count = %d, %v; want %d", count, err, n)
	}
}

func TestScanOrderAndRange(t *testing.T) {
	tr := newTree(t, 256)
	const n = 5000
	for _, i := range rand.New(rand.NewSource(9)).Perm(n) {
		if err := tr.Insert(key(i), rid.RID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var keys [][]byte
	err := tr.ScanFrom(nil, func(k []byte, r rid.RID) bool {
		keys = append(keys, append([]byte(nil), k...))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != n {
		t.Fatalf("scan saw %d keys, want %d", len(keys), n)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 }) {
		t.Fatal("scan not in key order")
	}
	// Range from the middle.
	start := key(2500)
	var got []int
	err = tr.ScanFrom(start, func(k []byte, r rid.RID) bool {
		got = append(got, int(r-1))
		return len(got) < 10
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 2500+i {
			t.Fatalf("range scan got %v", got)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 256)
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), rid.RID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i += 2 {
		r, found, err := tr.Delete(key(i))
		if err != nil || !found || r != rid.RID(i+1) {
			t.Fatalf("Delete(%d) = %v %v %v", i, r, found, err)
		}
	}
	if _, found, _ := tr.Delete(key(0)); found {
		t.Fatal("double delete found key")
	}
	for i := 0; i < n; i++ {
		_, found, _ := tr.Search(key(i))
		if (i%2 == 0) == found {
			t.Fatalf("key %d presence wrong: found=%v", i, found)
		}
	}
	count, _ := tr.Count()
	if count != n/2 {
		t.Fatalf("Count = %d, want %d", count, n/2)
	}
}

func TestUpdateRebindsRID(t *testing.T) {
	tr := newTree(t, 64)
	if err := tr.Insert(key(7), 100); err != nil {
		t.Fatal(err)
	}
	ok, err := tr.Update(key(7), 200)
	if err != nil || !ok {
		t.Fatalf("Update = %v %v", ok, err)
	}
	r, _, _ := tr.Search(key(7))
	if r != 200 {
		t.Fatalf("after update RID = %v", r)
	}
	ok, err = tr.Update([]byte("missing"), 1)
	if err != nil || ok {
		t.Fatal("Update of missing key should report false")
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	tr := newTree(t, 64)
	for round := 0; round < 5; round++ {
		for i := 0; i < 500; i++ {
			if err := tr.Insert(key(i), rid.RID(i+1)); err != nil {
				t.Fatalf("round %d insert %d: %v", round, i, err)
			}
		}
		for i := 0; i < 500; i++ {
			if _, found, _ := tr.Delete(key(i)); !found {
				t.Fatalf("round %d delete %d missing", round, i)
			}
		}
	}
	count, _ := tr.Count()
	if count != 0 {
		t.Fatalf("tree not empty: %d", count)
	}
}

func TestLoadFromRoot(t *testing.T) {
	dev := disk.NewMemDevice(0, 0)
	defer dev.Close()
	pool, _ := buffer.NewPool(dev, 256, nil)
	tr, err := New(pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := tr.Insert(key(i), rid.RID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	root := tr.Root()

	tr2 := Load(pool, root)
	r, found, err := tr2.Search(key(4321))
	if err != nil || !found || r != 4322 {
		t.Fatalf("loaded tree Search = %v %v %v", r, found, err)
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr := newTree(t, 256)
	rng := rand.New(rand.NewSource(5))
	model := map[string]rid.RID{}
	for i := 0; i < 3000; i++ {
		k := make([]byte, 1+rng.Intn(200))
		rng.Read(k)
		if _, dup := model[string(k)]; dup {
			continue
		}
		model[string(k)] = rid.RID(i + 1)
		if err := tr.Insert(k, rid.RID(i+1)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for k, want := range model {
		r, found, err := tr.Search([]byte(k))
		if err != nil || !found || r != want {
			t.Fatalf("Search(%x) = %v %v %v, want %v", k, r, found, err, want)
		}
	}
}

func TestKeyTooLarge(t *testing.T) {
	tr := newTree(t, 64)
	if err := tr.Insert(make([]byte, MaxKeySize+1), 1); err == nil {
		t.Fatal("oversized key accepted")
	}
}

func TestConcurrentReadersWithWriter(t *testing.T) {
	tr := newTree(t, 512)
	for i := 0; i < 2000; i++ {
		if err := tr.Insert(key(i), rid.RID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 2000; i < 4000; i++ {
			if err := tr.Insert(key(i), rid.RID(i+1)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				j := rng.Intn(2000)
				r, found, err := tr.Search(key(j))
				if err != nil || !found || r != rid.RID(j+1) {
					t.Errorf("Search(%d) = %v %v %v", j, r, found, err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	count, _ := tr.Count()
	if count != 4000 {
		t.Fatalf("Count = %d, want 4000", count)
	}
}

func TestRandomizedAgainstModel(t *testing.T) {
	tr := newTree(t, 512)
	rng := rand.New(rand.NewSource(11))
	model := map[string]rid.RID{}
	for i := 0; i < 20000; i++ {
		k := key(rng.Intn(4000))
		switch rng.Intn(3) {
		case 0:
			err := tr.Insert(k, rid.RID(i+1))
			if _, exists := model[string(k)]; exists {
				if err != ErrDuplicate {
					t.Fatalf("iteration %d: want ErrDuplicate, got %v", i, err)
				}
			} else {
				if err != nil {
					t.Fatalf("iteration %d: insert: %v", i, err)
				}
				model[string(k)] = rid.RID(i + 1)
			}
		case 1:
			r, found, err := tr.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			want, exists := model[string(k)]
			if found != exists || (found && r != want) {
				t.Fatalf("iteration %d: delete mismatch", i)
			}
			delete(model, string(k))
		case 2:
			r, found, err := tr.Search(k)
			if err != nil {
				t.Fatal(err)
			}
			want, exists := model[string(k)]
			if found != exists || (found && r != want) {
				t.Fatalf("iteration %d: search mismatch", i)
			}
		}
	}
	count, _ := tr.Count()
	if count != len(model) {
		t.Fatalf("final Count = %d, model = %d", count, len(model))
	}
}
