package btree

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/rid"
	"repro/internal/storage/buffer"
	"repro/internal/storage/disk"
)

func benchTree(b *testing.B, preload int) *Tree {
	b.Helper()
	dev := disk.NewMemDevice(0, 0)
	b.Cleanup(func() { dev.Close() })
	pool, err := buffer.NewPool(dev, 4096, nil)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := New(pool)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < preload; i++ {
		if err := tr.Insert(benchKey(i), rid.RID(i+1)); err != nil {
			b.Fatal(err)
		}
	}
	return tr
}

func benchKey(i int) []byte {
	var k [12]byte
	copy(k[:4], "key-")
	binary.BigEndian.PutUint64(k[4:], uint64(i))
	return k[:]
}

func BenchmarkBTreeInsert(b *testing.B) {
	tr := benchTree(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(benchKey(i), rid.RID(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeSearch(b *testing.B) {
	const n = 100_000
	tr := benchTree(b, n)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(n)
		_, found, err := tr.Search(benchKey(j))
		if err != nil || !found {
			b.Fatal("lookup failed")
		}
	}
}

func BenchmarkBTreeScan(b *testing.B) {
	const n = 100_000
	tr := benchTree(b, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		if err := tr.ScanFrom(nil, func([]byte, rid.RID) bool {
			count++
			return true
		}); err != nil {
			b.Fatal(err)
		}
		if count != n {
			b.Fatalf("scan saw %d", count)
		}
	}
}
