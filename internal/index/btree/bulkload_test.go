package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rid"
)

func bulkItems(n int, pad int) []Item {
	items := make([]Item, n)
	for i := range items {
		k := fmt.Sprintf("key-%08d%s", i, strings.Repeat("p", pad))
		items[i] = Item{Key: []byte(k), RID: rid.RID(i + 1)}
	}
	return items
}

func TestBulkLoadSearchAndScan(t *testing.T) {
	for _, n := range []int{0, 1, 5, 300, 5000} {
		tr := newTree(t, 512)
		items := bulkItems(n, 0)
		if err := tr.BulkLoad(items); err != nil {
			t.Fatalf("n=%d: BulkLoad: %v", n, err)
		}
		for _, it := range items {
			r, found, err := tr.Search(it.Key)
			if err != nil || !found || r != it.RID {
				t.Fatalf("n=%d: Search(%s) = %v,%v,%v", n, it.Key, r, found, err)
			}
		}
		if _, found, _ := tr.Search([]byte("zzz-missing")); found {
			t.Fatalf("n=%d: found missing key", n)
		}
		// Full scan yields everything in order (exercises the leaf chain).
		i := 0
		err := tr.ScanFrom(nil, func(k []byte, r rid.RID) bool {
			if i >= n || !bytes.Equal(k, items[i].Key) || r != items[i].RID {
				t.Fatalf("n=%d: scan item %d = %s,%v", n, i, k, r)
			}
			i++
			return true
		})
		if err != nil || i != n {
			t.Fatalf("n=%d: scan visited %d (err %v)", n, i, err)
		}
	}
}

// Wide keys force multi-level internal fan-out so the bottom-up level
// builder is exercised past a single parent.
func TestBulkLoadDeepTree(t *testing.T) {
	tr := newTree(t, 2048)
	items := bulkItems(4000, 400)
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	n, err := tr.Count()
	if err != nil || n != len(items) {
		t.Fatalf("Count = %d, %v, want %d", n, err, len(items))
	}
	for _, i := range []int{0, 1, 1999, 3998, 3999} {
		r, found, err := tr.Search(items[i].Key)
		if err != nil || !found || r != items[i].RID {
			t.Fatalf("Search(%d) = %v,%v,%v", i, r, found, err)
		}
	}
}

// Inserts after a bulk load must split the packed leaves correctly.
func TestBulkLoadThenInsert(t *testing.T) {
	tr := newTree(t, 512)
	const n = 3000
	items := make([]Item, 0, n)
	for i := 0; i < n; i += 2 { // even keys loaded
		items = append(items, Item{Key: key(i), RID: rid.RID(i + 1)})
	}
	if err := tr.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(7)).Perm(n / 2)
	for _, j := range perm { // odd keys inserted
		i := 2*j + 1
		if err := tr.Insert(key(i), rid.RID(i+1)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	cnt, err := tr.Count()
	if err != nil || cnt != n {
		t.Fatalf("Count = %d, %v, want %d", cnt, err, n)
	}
	for i := 0; i < n; i++ {
		r, found, err := tr.Search(key(i))
		if err != nil || !found || r != rid.RID(i+1) {
			t.Fatalf("Search(%d) = %v,%v,%v", i, r, found, err)
		}
	}
}

func TestBulkLoadRejectsBadInput(t *testing.T) {
	tr := newTree(t, 64)
	dup := []Item{{Key: []byte("a"), RID: 1}, {Key: []byte("a"), RID: 2}}
	if err := tr.BulkLoad(dup); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	unsorted := []Item{{Key: []byte("b"), RID: 1}, {Key: []byte("a"), RID: 2}}
	if err := tr.BulkLoad(unsorted); err == nil {
		t.Fatal("unsorted keys accepted")
	}
	huge := []Item{{Key: bytes.Repeat([]byte("k"), MaxKeySize+1), RID: 1}}
	if err := tr.BulkLoad(huge); err == nil {
		t.Fatal("oversized key accepted")
	}
}

// BulkLoad must agree with an Insert-built tree item for item.
func TestBulkLoadMatchesInsertBuilt(t *testing.T) {
	items := bulkItems(2500, 30)
	bl := newTree(t, 1024)
	if err := bl.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	ins := newTree(t, 1024)
	perm := rand.New(rand.NewSource(11)).Perm(len(items))
	for _, i := range perm {
		if err := ins.Insert(items[i].Key, items[i].RID); err != nil {
			t.Fatal(err)
		}
	}
	collect := func(tr *Tree) []Item {
		var out []Item
		if err := tr.ScanFrom(nil, func(k []byte, r rid.RID) bool {
			out = append(out, Item{Key: append([]byte(nil), k...), RID: r})
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(bl), collect(ins)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || a[i].RID != b[i].RID {
			t.Fatalf("item %d differs: %s=%v vs %s=%v", i, a[i].Key, a[i].RID, b[i].Key, b[i].RID)
		}
	}
}
