package btree

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/rid"
	"repro/internal/storage/buffer"
	"repro/internal/storage/page"
)

// ErrDuplicate reports an insert of a key that already exists.
var ErrDuplicate = errors.New("btree: duplicate key")

// Tree is a page-based B+tree mapping byte keys to RIDs. Keys are unique
// at this level; non-unique indexes append the RID to the key upstream.
//
// Concurrency is latch coupling (lock crabbing) over the buffer pool's
// per-frame latches — there is no tree-wide lock on any path that
// touches the pool. The only tree-level state is the root page id, held
// in an atomic: traversals load it, latch the frame, and re-check the id
// (restarting if a root split won the race); root splits install the new
// id before the old root's exclusive latch is released, so a traversal
// can never descend from a stale root unnoticed. Page ids are never
// recycled by the pool's device layer, which rules out ABA on the
// re-check and keeps captured leaf-chain pointers valid.
//
// Readers crab down with shared latches (child latched before the parent
// is released). Writers first run an optimistic descent: shared latches
// down to the leaf's parent, then the leaf latch is upgraded to
// exclusive while the parent's shared latch is still held — the parent
// latch blocks leaf splits, so only the leaf's content can shift in the
// upgrade gap and the writer simply re-searches. If the leaf cannot
// absorb the insert, the writer releases everything and restarts
// pessimistically: exclusive crabbing from the root, releasing all
// retained ancestors whenever it latches a "safe" node (one whose free
// space absorbs a worst-case separator without splitting), so the
// exclusive path shrinks to the nodes that may actually split.
type Tree struct {
	pool *buffer.Pool
	root atomic.Uint32

	latchWaits metrics.Counter // contested latches — the ILM contention signal
	restarts   metrics.Counter // optimistic descents that fell back / root re-checks

	// coarse reproduces the old tree-wide-lock behavior for benchmark
	// baselines (cmd/readbench): every op wraps itself in coarseMu, held
	// across all pool fetches, exactly like the pre-crabbing tree.
	coarse   atomic.Bool
	coarseMu sync.RWMutex
}

// New allocates an empty tree (a single leaf root).
func New(pool *buffer.Pool) (*Tree, error) {
	id, f, err := pool.NewPage(page.TypeBTreeLeaf)
	if err != nil {
		return nil, err
	}
	btInit(f.Page(), true)
	f.Unlatch(true)
	pool.Unpin(f, true)
	t := &Tree{pool: pool}
	t.root.Store(id)
	return t, nil
}

// Load reattaches a tree whose root page id was persisted in the catalog.
func Load(pool *buffer.Pool, root uint32) *Tree {
	t := &Tree{pool: pool}
	t.root.Store(root)
	return t
}

// Root returns the current root page id (persisted in catalog snapshots).
func (t *Tree) Root() uint32 { return t.root.Load() }

// LatchWaits returns the number of contested frame-latch acquisitions
// this tree has performed — the index half of the ILM contention signal.
func (t *Tree) LatchWaits() int64 { return t.latchWaits.Load() }

// Restarts returns how many traversals had to restart: optimistic
// inserts that fell back to the pessimistic path plus root re-check
// retries lost to a concurrent root split.
func (t *Tree) Restarts() int64 { return t.restarts.Load() }

// SetCoarse switches the tree to a tree-wide reader/writer lock held
// across buffer-pool fetches — the pre-latch-coupling behavior. It
// exists so benchmarks can measure the baseline; production trees never
// enable it. Toggle only while the tree is quiescent.
func (t *Tree) SetCoarse(v bool) { t.coarse.Store(v) }

// latch acquires f's latch, attributing any wait to the tree level.
func (t *Tree) latch(f *buffer.Frame, excl bool, level int) {
	if f.Latch(excl) {
		t.latchWaits.Inc()
		t.pool.Stats().NoteIndexWait(level)
	}
}

// upgrade trades f's shared latch for an exclusive one (non-atomic; see
// buffer.Frame.Upgrade), attributing any wait to the tree level.
func (t *Tree) upgrade(f *buffer.Frame, level int) {
	if f.Upgrade() {
		t.latchWaits.Inc()
		t.pool.Stats().NoteIndexWait(level)
	}
}

// release unlatches and unpins f.
func (t *Tree) release(f *buffer.Frame, excl bool) {
	f.Unlatch(excl)
	t.pool.Unpin(f, false)
}

// latchRoot latches the current root frame, restarting until the root id
// observed before the latch still names the root after it — the re-check
// half of the root-split protocol.
func (t *Tree) latchRoot(excl bool) (*buffer.Frame, error) {
	for {
		id := t.root.Load()
		f, err := t.pool.Fetch(id)
		if err != nil {
			return nil, err
		}
		t.latch(f, excl, 0)
		if t.root.Load() == id {
			return f, nil
		}
		// A root split slipped in between the load and the latch.
		t.restarts.Inc()
		t.release(f, excl)
	}
}

// descendShared crabs shared latches from the root to the leaf covering
// key: the child is latched before the parent is released, so the child
// cannot split (splitters need the parent exclusively) between the
// pointer read and the latch. Returns the leaf shared-latched and pinned.
func (t *Tree) descendShared(key []byte) (*buffer.Frame, error) {
	f, err := t.latchRoot(false)
	if err != nil {
		return nil, err
	}
	level := 0
	for !isLeaf(f.Page()) {
		buf := f.Page().Bytes()
		child := childFor(buf, descendPos(buf, key))
		cf, err := t.pool.Fetch(child)
		if err != nil {
			t.release(f, false)
			return nil, err
		}
		level++
		t.latch(cf, false, level)
		t.release(f, false)
		f = cf
	}
	return f, nil
}

// descendExclusiveLeaf is the optimistic write descent: shared crabbing
// to the leaf's parent, then the leaf is upgraded to exclusive while the
// parent's shared latch is still held. The parent latch blocks leaf
// splits across the (non-atomic) upgrade gap, so the leaf still covers
// key's range when the exclusive latch lands — but its content may have
// shifted, so callers must re-search. When the root itself is the leaf
// there is no parent to pin the range; the root id is re-checked after
// the upgrade instead, restarting the descent if a split won.
func (t *Tree) descendExclusiveLeaf(key []byte) (*buffer.Frame, error) {
	for {
		f, err := t.latchRoot(false)
		if err != nil {
			return nil, err
		}
		if isLeaf(f.Page()) {
			id := f.ID()
			t.upgrade(f, 0)
			if t.root.Load() != id {
				t.restarts.Inc()
				t.release(f, true)
				continue
			}
			return f, nil
		}
		level := 0
		for {
			buf := f.Page().Bytes()
			child := childFor(buf, descendPos(buf, key))
			cf, err := t.pool.Fetch(child)
			if err != nil {
				t.release(f, false)
				return nil, err
			}
			level++
			t.latch(cf, false, level)
			if isLeaf(cf.Page()) {
				t.upgrade(cf, level)
				t.release(f, false)
				return cf, nil
			}
			t.release(f, false)
			f = cf
		}
	}
}

// Search returns the RID stored under key.
func (t *Tree) Search(key []byte) (rid.RID, bool, error) {
	if t.coarse.Load() {
		t.coarseMu.RLock()
		defer t.coarseMu.RUnlock()
	}
	f, err := t.descendShared(key)
	if err != nil {
		return rid.Zero, false, err
	}
	buf := f.Page().Bytes()
	pos, found := search(buf, key)
	var r rid.RID
	if found {
		r = leafValAt(buf, pos)
	}
	t.release(f, false)
	return r, found, nil
}

// Insert stores key → r; it fails with ErrDuplicate if key exists.
func (t *Tree) Insert(key []byte, r rid.RID) error {
	if len(key) > MaxKeySize {
		return fmt.Errorf("btree: key of %d bytes exceeds max %d", len(key), MaxKeySize)
	}
	if t.coarse.Load() {
		t.coarseMu.Lock()
		defer t.coarseMu.Unlock()
	}
	done, err := t.insertOptimistic(key, r)
	if done || err != nil {
		return err
	}
	t.restarts.Inc()
	return t.insertPessimistic(key, r)
}

// insertOptimistic tries the common no-split case: exclusive latch on
// the leaf only. done=false means the leaf is full and the caller must
// retry pessimistically.
func (t *Tree) insertOptimistic(key []byte, r rid.RID) (done bool, err error) {
	f, err := t.descendExclusiveLeaf(key)
	if err != nil {
		return false, err
	}
	buf := f.Page().Bytes()
	pos, found := search(buf, key)
	if found {
		t.release(f, true)
		return true, ErrDuplicate
	}
	if insertCell(buf, pos, key, u64val(r)) {
		f.MarkDirty()
		t.release(f, true)
		return true, nil
	}
	t.release(f, true)
	return false, nil
}

// pathEntry is one retained frame of a pessimistic descent.
type pathEntry struct {
	f     *buffer.Frame
	level int
}

// insertPessimistic crabs exclusive latches from the root, releasing all
// retained ancestors whenever the just-latched child is safe — able to
// absorb a worst-case cell without splitting — so only the suffix of the
// path that may actually split stays latched. Splits then propagate up
// through exactly that retained suffix; by construction the topmost
// retained node either absorbs the separator (it was safe) or is the
// root, in which case the tree grows a level and the new root id is
// installed before the old root's latch is released.
func (t *Tree) insertPessimistic(key []byte, r rid.RID) error {
	f, err := t.latchRoot(true)
	if err != nil {
		return err
	}
	path := []pathEntry{{f, 0}}
	releaseAll := func() {
		for i := len(path) - 1; i >= 0; i-- {
			t.release(path[i].f, true)
		}
	}

	level := 0
	for !isLeaf(f.Page()) {
		buf := f.Page().Bytes()
		child := childFor(buf, descendPos(buf, key))
		cf, err := t.pool.Fetch(child)
		if err != nil {
			releaseAll()
			return err
		}
		level++
		t.latch(cf, true, level)
		var need int
		if isLeaf(cf.Page()) {
			need = cellSize(len(key), true) + btPtrSize
		} else {
			// An internal node absorbs a separator of at most MaxKeySize.
			need = cellSize(MaxKeySize, false) + btPtrSize
		}
		if freeBytes(cf.Page().Bytes()) >= need {
			// cf is safe: nothing above it can be forced to split.
			releaseAll()
			path = path[:0]
		}
		path = append(path, pathEntry{cf, level})
		f = cf
	}

	buf := f.Page().Bytes()
	pos, found := search(buf, key)
	if found {
		// Another writer inserted key between our optimistic attempt and
		// this restart.
		releaseAll()
		return ErrDuplicate
	}
	if insertCell(buf, pos, key, u64val(r)) {
		f.MarkDirty()
		releaseAll()
		return nil
	}

	sep, right, err := t.splitLeaf(f, key, r)
	if err != nil {
		releaseAll()
		return err
	}
	for i := len(path) - 2; i >= 0; i-- {
		pf := path[i].f
		pbuf := pf.Page().Bytes()
		ppos, _ := search(pbuf, sep)
		if insertCell(pbuf, ppos, sep, u32val(right)) {
			pf.MarkDirty()
			releaseAll()
			return nil
		}
		sep, right, err = t.splitInternal(pf, sep, right)
		if err != nil {
			releaseAll()
			return err
		}
	}

	// The topmost retained node split. Safe nodes cannot fail insertCell,
	// so it must be the root (held exclusively since latchRoot, which
	// also means no other writer can have moved the root meanwhile):
	// grow a new root and install its id before releasing the old root.
	oldRoot := path[0].f.ID()
	newRootID, nf, err := t.pool.NewPage(page.TypeBTreeInternal)
	if err != nil {
		releaseAll()
		return err
	}
	btInit(nf.Page(), false)
	nbuf := nf.Page().Bytes()
	setLeftChild(nbuf, oldRoot)
	if !insertCell(nbuf, 0, sep, u32val(right)) {
		t.release(nf, true)
		releaseAll()
		return fmt.Errorf("btree: separator does not fit in fresh root")
	}
	nf.MarkDirty()
	t.root.Store(newRootID)
	t.release(nf, true)
	releaseAll()
	return nil
}

// Update rebinds key to r, returning whether the key existed. Pack uses
// it to repoint index entries from a virtual RID to a page-store RID.
func (t *Tree) Update(key []byte, r rid.RID) (bool, error) {
	if t.coarse.Load() {
		t.coarseMu.Lock()
		defer t.coarseMu.Unlock()
	}
	f, err := t.descendExclusiveLeaf(key)
	if err != nil {
		return false, err
	}
	buf := f.Page().Bytes()
	pos, found := search(buf, key)
	if found {
		setLeafValAt(buf, pos, r)
		f.MarkDirty()
	}
	t.release(f, true)
	return found, nil
}

// Delete removes key, returning the RID it held and whether it existed.
// Nodes are allowed to underflow (no rebalancing), which is what lets
// deletes run with a single leaf latch: a delete never changes any
// node's key range, so no ancestor needs latching.
func (t *Tree) Delete(key []byte) (rid.RID, bool, error) {
	if t.coarse.Load() {
		t.coarseMu.Lock()
		defer t.coarseMu.Unlock()
	}
	f, err := t.descendExclusiveLeaf(key)
	if err != nil {
		return rid.Zero, false, err
	}
	buf := f.Page().Bytes()
	pos, found := search(buf, key)
	var r rid.RID
	if found {
		r = leafValAt(buf, pos)
		deleteCell(buf, pos)
		f.MarkDirty()
	}
	t.release(f, true)
	return r, found, nil
}

// splitLeaf splits the exclusively-latched full leaf f, inserting key→r
// into the correct half, and returns the separator (first key of the
// right leaf) and the right leaf's page id.
func (t *Tree) splitLeaf(f *buffer.Frame, key []byte, r rid.RID) ([]byte, uint32, error) {
	buf := f.Page().Bytes()
	n := numKeys(buf)
	type kv struct {
		k []byte
		v rid.RID
	}
	items := make([]kv, 0, n+1)
	inserted := false
	for i := 0; i < n; i++ {
		k := append([]byte(nil), keyAt(buf, i)...)
		if !inserted && string(key) < string(k) {
			items = append(items, kv{append([]byte(nil), key...), r})
			inserted = true
		}
		items = append(items, kv{k, leafValAt(buf, i)})
	}
	if !inserted {
		items = append(items, kv{append([]byte(nil), key...), r})
	}
	mid := len(items) / 2

	rightID, rf, err := t.pool.NewPage(page.TypeBTreeLeaf)
	if err != nil {
		return nil, 0, err
	}
	btInit(rf.Page(), true)
	rbuf := rf.Page().Bytes()
	for i, it := range items[mid:] {
		if !insertCell(rbuf, i, it.k, u64val(it.v)) {
			rf.Unlatch(true)
			t.pool.Unpin(rf, true)
			return nil, 0, fmt.Errorf("btree: right split leaf overflow")
		}
	}

	// Rebuild the left leaf in place, preserving its chain links.
	oldNext := f.Page().Next()
	oldPrev := f.Page().Prev()
	btInit(f.Page(), true)
	f.Page().SetPrev(oldPrev)
	buf = f.Page().Bytes()
	for i, it := range items[:mid] {
		if !insertCell(buf, i, it.k, u64val(it.v)) {
			rf.Unlatch(true)
			t.pool.Unpin(rf, true)
			return nil, 0, fmt.Errorf("btree: left split leaf overflow")
		}
	}

	// Chain: left -> right -> oldNext.
	f.Page().SetNext(rightID)
	rf.Page().SetPrev(f.ID())
	rf.Page().SetNext(oldNext)
	rf.MarkDirty()
	f.MarkDirty()
	rf.Unlatch(true)
	t.pool.Unpin(rf, true)

	if oldNext != noChild {
		// Left-to-right leaf latch order, same direction the scan walks:
		// no cycle with chain walkers or other splitters.
		nf, err := t.pool.Fetch(oldNext)
		if err != nil {
			return nil, 0, err
		}
		if nf.Latch(true) {
			t.latchWaits.Inc()
		}
		nf.Page().SetPrev(rightID)
		nf.MarkDirty()
		nf.Unlatch(true)
		t.pool.Unpin(nf, true)
	}
	sep := append([]byte(nil), items[mid].k...)
	return sep, rightID, nil
}

// splitInternal splits the exclusively-latched full internal node f
// after logically adding csep→cright, and returns the promoted middle
// key plus the new right node id.
func (t *Tree) splitInternal(f *buffer.Frame, csep []byte, cright uint32) ([]byte, uint32, error) {
	buf := f.Page().Bytes()
	n := numKeys(buf)
	type kc struct {
		k []byte
		c uint32
	}
	items := make([]kc, 0, n+1)
	inserted := false
	for i := 0; i < n; i++ {
		k := append([]byte(nil), keyAt(buf, i)...)
		if !inserted && string(csep) < string(k) {
			items = append(items, kc{append([]byte(nil), csep...), cright})
			inserted = true
		}
		items = append(items, kc{k, innerChildAt(buf, i)})
	}
	if !inserted {
		items = append(items, kc{append([]byte(nil), csep...), cright})
	}
	left0 := leftChild(buf)
	mid := len(items) / 2
	promoted := items[mid]

	rightID, rf, err := t.pool.NewPage(page.TypeBTreeInternal)
	if err != nil {
		return nil, 0, err
	}
	btInit(rf.Page(), false)
	rbuf := rf.Page().Bytes()
	setLeftChild(rbuf, promoted.c)
	for i, it := range items[mid+1:] {
		if !insertCell(rbuf, i, it.k, u32val(it.c)) {
			rf.Unlatch(true)
			t.pool.Unpin(rf, true)
			return nil, 0, fmt.Errorf("btree: right split internal overflow")
		}
	}
	rf.MarkDirty()
	rf.Unlatch(true)
	t.pool.Unpin(rf, true)

	btInit(f.Page(), false)
	buf = f.Page().Bytes()
	setLeftChild(buf, left0)
	for i, it := range items[:mid] {
		if !insertCell(buf, i, it.k, u32val(it.c)) {
			return nil, 0, fmt.Errorf("btree: left split internal overflow")
		}
	}
	f.MarkDirty()
	return promoted.k, rightID, nil
}

// ScanFrom visits entries with key >= start in ascending key order until
// fn returns false. fn receives aliased key bytes it must not retain.
//
// The scan holds at most one leaf latch at a time and holds NO latch
// while fn runs, so fn may re-enter the engine (resolve rows, take row
// locks) without deadlock risk. Between leaves the scan steps via the
// next pointer captured under the previous leaf's latch and re-derives
// its position by the last key it yielded, emitting only keys strictly
// greater. That is sound under concurrent splits because a leaf's key
// range only ever splits rightward: keys that existed when a leaf was
// read were all captured from it, and no later leaf can gain keys at or
// below the resume bound. Keys inserted concurrently with the scan may
// or may not be seen — the same non-guarantee the tree-wide lock gave,
// since it never spanned fn either.
func (t *Tree) ScanFrom(start []byte, fn func(key []byte, r rid.RID) bool) error {
	if t.coarse.Load() {
		t.coarseMu.RLock()
		defer t.coarseMu.RUnlock()
	}
	f, err := t.descendShared(start)
	if err != nil {
		return err
	}
	type kv struct {
		k []byte
		v rid.RID
	}
	var bound []byte // last key yielded; resume strictly after it
	first := true
	for {
		buf := f.Page().Bytes()
		var pos int
		if first {
			pos, _ = search(buf, start)
		} else {
			var found bool
			pos, found = search(buf, bound)
			if found {
				pos++
			}
		}
		n := numKeys(buf)
		batch := make([]kv, 0, n-pos)
		for i := pos; i < n; i++ {
			batch = append(batch, kv{append([]byte(nil), keyAt(buf, i)...), leafValAt(buf, i)})
		}
		next := f.Page().Next()
		t.release(f, false)
		for _, it := range batch {
			if !fn(it.k, it.v) {
				return nil
			}
		}
		if len(batch) > 0 {
			bound = batch[len(batch)-1].k
			first = false
		}
		if next == noChild {
			return nil
		}
		nf, err := t.pool.Fetch(next)
		if err != nil {
			return err
		}
		t.latch(nf, false, buffer.IndexLatchLevels-1)
		f = nf
	}
}

// Count returns the number of entries (full scan; tests and stats).
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.ScanFrom(nil, func([]byte, rid.RID) bool { n++; return true })
	return n, err
}
