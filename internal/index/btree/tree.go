package btree

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/rid"
	"repro/internal/storage/buffer"
	"repro/internal/storage/page"
)

// ErrDuplicate reports an insert of a key that already exists.
var ErrDuplicate = errors.New("btree: duplicate key")

// Tree is a page-based B+tree mapping byte keys to RIDs. Keys are unique
// at this level; non-unique indexes append the RID to the key upstream.
type Tree struct {
	pool *buffer.Pool

	mu   sync.RWMutex
	root uint32
}

// New allocates an empty tree (a single leaf root).
func New(pool *buffer.Pool) (*Tree, error) {
	id, f, err := pool.NewPage(page.TypeBTreeLeaf)
	if err != nil {
		return nil, err
	}
	btInit(f.Page(), true)
	f.Unlatch(true)
	pool.Unpin(f, true)
	return &Tree{pool: pool, root: id}, nil
}

// Load reattaches a tree whose root page id was persisted in the catalog.
func Load(pool *buffer.Pool, root uint32) *Tree {
	return &Tree{pool: pool, root: root}
}

// Root returns the current root page id (persisted in catalog snapshots).
func (t *Tree) Root() uint32 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root
}

// Search returns the RID stored under key.
func (t *Tree) Search(key []byte) (rid.RID, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pid := t.root
	for {
		f, err := t.pool.Fetch(pid)
		if err != nil {
			return rid.Zero, false, err
		}
		f.Latch(false)
		buf := f.Page().Bytes()
		if isLeaf(f.Page()) {
			pos, found := search(buf, key)
			var r rid.RID
			if found {
				r = leafValAt(buf, pos)
			}
			f.Unlatch(false)
			t.pool.Unpin(f, false)
			return r, found, nil
		}
		next := childFor(buf, descendPos(buf, key))
		f.Unlatch(false)
		t.pool.Unpin(f, false)
		pid = next
	}
}

// Insert stores key → r; it fails with ErrDuplicate if key exists.
func (t *Tree) Insert(key []byte, r rid.RID) error {
	if len(key) > MaxKeySize {
		return fmt.Errorf("btree: key of %d bytes exceeds max %d", len(key), MaxKeySize)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	promoted, sep, right, err := t.insertInto(t.root, key, r)
	if err != nil {
		return err
	}
	if !promoted {
		return nil
	}
	// Grow a new root.
	newRoot, f, err := t.pool.NewPage(page.TypeBTreeInternal)
	if err != nil {
		return err
	}
	btInit(f.Page(), false)
	buf := f.Page().Bytes()
	setLeftChild(buf, t.root)
	if !insertCell(buf, 0, sep, u32val(right)) {
		f.Unlatch(true)
		t.pool.Unpin(f, true)
		return fmt.Errorf("btree: separator does not fit in fresh root")
	}
	f.MarkDirty()
	f.Unlatch(true)
	t.pool.Unpin(f, true)
	t.root = newRoot
	return nil
}

// Update rebinds key to r, returning whether the key existed. Pack uses
// it to repoint index entries from a virtual RID to a page-store RID.
func (t *Tree) Update(key []byte, r rid.RID) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pid := t.root
	for {
		f, err := t.pool.Fetch(pid)
		if err != nil {
			return false, err
		}
		f.Latch(true)
		buf := f.Page().Bytes()
		if isLeaf(f.Page()) {
			pos, found := search(buf, key)
			if found {
				setLeafValAt(buf, pos, r)
				f.MarkDirty()
			}
			f.Unlatch(true)
			t.pool.Unpin(f, found)
			return found, nil
		}
		next := childFor(buf, descendPos(buf, key))
		f.Unlatch(true)
		t.pool.Unpin(f, false)
		pid = next
	}
}

// Delete removes key, returning the RID it held and whether it existed.
// Nodes are allowed to underflow (no rebalancing).
func (t *Tree) Delete(key []byte) (rid.RID, bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pid := t.root
	for {
		f, err := t.pool.Fetch(pid)
		if err != nil {
			return rid.Zero, false, err
		}
		f.Latch(true)
		buf := f.Page().Bytes()
		if isLeaf(f.Page()) {
			pos, found := search(buf, key)
			var r rid.RID
			if found {
				r = leafValAt(buf, pos)
				deleteCell(buf, pos)
				f.MarkDirty()
			}
			f.Unlatch(true)
			t.pool.Unpin(f, found)
			return r, found, nil
		}
		next := childFor(buf, descendPos(buf, key))
		f.Unlatch(true)
		t.pool.Unpin(f, false)
		pid = next
	}
}

// insertInto inserts into the subtree rooted at pid. When the node
// splits, it returns the separator key and new right sibling for the
// parent to absorb.
func (t *Tree) insertInto(pid uint32, key []byte, r rid.RID) (promoted bool, sep []byte, right uint32, err error) {
	f, err := t.pool.Fetch(pid)
	if err != nil {
		return false, nil, 0, err
	}
	f.Latch(true)
	buf := f.Page().Bytes()

	if isLeaf(f.Page()) {
		pos, found := search(buf, key)
		if found {
			f.Unlatch(true)
			t.pool.Unpin(f, false)
			return false, nil, 0, ErrDuplicate
		}
		if insertCell(buf, pos, key, u64val(r)) {
			f.MarkDirty()
			f.Unlatch(true)
			t.pool.Unpin(f, true)
			return false, nil, 0, nil
		}
		// Split the leaf.
		sep, right, err = t.splitLeaf(f, key, r)
		f.Unlatch(true)
		t.pool.Unpin(f, true)
		return err == nil, sep, right, err
	}

	childPos := descendPos(buf, key)
	child := childFor(buf, childPos)
	// Release the latch during the recursive descent: the tree-level
	// exclusive lock already serializes writers, and readers never see
	// intermediate states because they take the tree-level read lock.
	f.Unlatch(true)
	promoted, csep, cright, err := t.insertInto(child, key, r)
	if err != nil || !promoted {
		t.pool.Unpin(f, false)
		return false, nil, 0, err
	}
	f.Latch(true)
	buf = f.Page().Bytes()
	pos, _ := search(buf, csep)
	if insertCell(buf, pos, csep, u32val(cright)) {
		f.MarkDirty()
		f.Unlatch(true)
		t.pool.Unpin(f, true)
		return false, nil, 0, nil
	}
	sep, right, err = t.splitInternal(f, csep, cright)
	f.Unlatch(true)
	t.pool.Unpin(f, true)
	return err == nil, sep, right, err
}

// splitLeaf splits the latched full leaf f, inserting key→r into the
// correct half, and returns the separator (first key of the right leaf)
// and the right leaf's page id.
func (t *Tree) splitLeaf(f *buffer.Frame, key []byte, r rid.RID) ([]byte, uint32, error) {
	buf := f.Page().Bytes()
	n := numKeys(buf)
	type kv struct {
		k []byte
		v rid.RID
	}
	items := make([]kv, 0, n+1)
	inserted := false
	for i := 0; i < n; i++ {
		k := append([]byte(nil), keyAt(buf, i)...)
		if !inserted && string(key) < string(k) {
			items = append(items, kv{append([]byte(nil), key...), r})
			inserted = true
		}
		items = append(items, kv{k, leafValAt(buf, i)})
	}
	if !inserted {
		items = append(items, kv{append([]byte(nil), key...), r})
	}
	mid := len(items) / 2

	rightID, rf, err := t.pool.NewPage(page.TypeBTreeLeaf)
	if err != nil {
		return nil, 0, err
	}
	btInit(rf.Page(), true)
	rbuf := rf.Page().Bytes()
	for i, it := range items[mid:] {
		if !insertCell(rbuf, i, it.k, u64val(it.v)) {
			rf.Unlatch(true)
			t.pool.Unpin(rf, true)
			return nil, 0, fmt.Errorf("btree: right split leaf overflow")
		}
	}

	// Rebuild the left leaf in place, preserving its chain links.
	oldNext := f.Page().Next()
	oldPrev := f.Page().Prev()
	btInit(f.Page(), true)
	f.Page().SetPrev(oldPrev)
	buf = f.Page().Bytes()
	for i, it := range items[:mid] {
		if !insertCell(buf, i, it.k, u64val(it.v)) {
			rf.Unlatch(true)
			t.pool.Unpin(rf, true)
			return nil, 0, fmt.Errorf("btree: left split leaf overflow")
		}
	}

	// Chain: left -> right -> oldNext.
	f.Page().SetNext(rightID)
	rf.Page().SetPrev(f.ID())
	rf.Page().SetNext(oldNext)
	rf.MarkDirty()
	f.MarkDirty()
	rf.Unlatch(true)
	t.pool.Unpin(rf, true)

	if oldNext != 0xFFFFFFFF {
		nf, err := t.pool.Fetch(oldNext)
		if err != nil {
			return nil, 0, err
		}
		nf.Latch(true)
		nf.Page().SetPrev(rightID)
		nf.MarkDirty()
		nf.Unlatch(true)
		t.pool.Unpin(nf, true)
	}
	sep := append([]byte(nil), items[mid].k...)
	return sep, rightID, nil
}

// splitInternal splits the latched full internal node f after logically
// adding csep→cright, and returns the promoted middle key plus the new
// right node id.
func (t *Tree) splitInternal(f *buffer.Frame, csep []byte, cright uint32) ([]byte, uint32, error) {
	buf := f.Page().Bytes()
	n := numKeys(buf)
	type kc struct {
		k []byte
		c uint32
	}
	items := make([]kc, 0, n+1)
	inserted := false
	for i := 0; i < n; i++ {
		k := append([]byte(nil), keyAt(buf, i)...)
		if !inserted && string(csep) < string(k) {
			items = append(items, kc{append([]byte(nil), csep...), cright})
			inserted = true
		}
		items = append(items, kc{k, innerChildAt(buf, i)})
	}
	if !inserted {
		items = append(items, kc{append([]byte(nil), csep...), cright})
	}
	left0 := leftChild(buf)
	mid := len(items) / 2
	promoted := items[mid]

	rightID, rf, err := t.pool.NewPage(page.TypeBTreeInternal)
	if err != nil {
		return nil, 0, err
	}
	btInit(rf.Page(), false)
	rbuf := rf.Page().Bytes()
	setLeftChild(rbuf, promoted.c)
	for i, it := range items[mid+1:] {
		if !insertCell(rbuf, i, it.k, u32val(it.c)) {
			rf.Unlatch(true)
			t.pool.Unpin(rf, true)
			return nil, 0, fmt.Errorf("btree: right split internal overflow")
		}
	}
	rf.MarkDirty()
	rf.Unlatch(true)
	t.pool.Unpin(rf, true)

	btInit(f.Page(), false)
	buf = f.Page().Bytes()
	setLeftChild(buf, left0)
	for i, it := range items[:mid] {
		if !insertCell(buf, i, it.k, u32val(it.c)) {
			return nil, 0, fmt.Errorf("btree: left split internal overflow")
		}
	}
	f.MarkDirty()
	return promoted.k, rightID, nil
}

// ScanFrom visits entries with key >= start in ascending key order until
// fn returns false. fn receives aliased key bytes it must not retain.
func (t *Tree) ScanFrom(start []byte, fn func(key []byte, r rid.RID) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pid := t.root
	// Descend to the leaf containing start.
	for {
		f, err := t.pool.Fetch(pid)
		if err != nil {
			return err
		}
		f.Latch(false)
		pg := f.Page()
		if isLeaf(pg) {
			f.Unlatch(false)
			t.pool.Unpin(f, false)
			break
		}
		next := childFor(pg.Bytes(), descendPos(pg.Bytes(), start))
		f.Unlatch(false)
		t.pool.Unpin(f, false)
		pid = next
	}
	// Walk the leaf chain.
	for pid != 0xFFFFFFFF {
		f, err := t.pool.Fetch(pid)
		if err != nil {
			return err
		}
		f.Latch(false)
		buf := f.Page().Bytes()
		pos, _ := search(buf, start)
		n := numKeys(buf)
		type kv struct {
			k []byte
			v rid.RID
		}
		batch := make([]kv, 0, n-pos)
		for i := pos; i < n; i++ {
			batch = append(batch, kv{append([]byte(nil), keyAt(buf, i)...), leafValAt(buf, i)})
		}
		next := f.Page().Next()
		f.Unlatch(false)
		t.pool.Unpin(f, false)
		for _, it := range batch {
			if !fn(it.k, it.v) {
				return nil
			}
		}
		pid = next
	}
	return nil
}

// Count returns the number of entries (full scan; tests and stats).
func (t *Tree) Count() (int, error) {
	n := 0
	err := t.ScanFrom(nil, func([]byte, rid.RID) bool { n++; return true })
	return n, err
}
