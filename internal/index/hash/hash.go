// Package hash implements the table-specific, non-logged, in-memory hash
// indexes of the BTrim architecture: lock-free hash tables that span only
// IMRS-resident rows and act as a fast-path performance accelerator under
// unique B-tree indexes (paper Section II). A miss here is not "absent" —
// it merely means the row must be located through the B-tree.
package hash

import (
	"sync/atomic"

	"repro/internal/imrs"
)

type node struct {
	key   string
	entry *imrs.Entry
	next  *node
}

// Index is a fixed-size lock-free hash table from key bytes to IMRS
// entries. Inserts CAS-push onto bucket chains; deletes rebuild the
// chain copy-on-write and CAS it in. There is no resize: the bucket
// count is chosen at construction (the engine sizes it per table).
type Index struct {
	buckets []atomic.Pointer[node]
	mask    uint64
	count   atomic.Int64

	// Hits/Misses instrument the fast path for the ablation bench.
	Hits   atomic.Int64
	Misses atomic.Int64
}

// New creates an index with at least minBuckets buckets (rounded up to a
// power of two, minimum 256).
func New(minBuckets int) *Index {
	n := 256
	for n < minBuckets {
		n <<= 1
	}
	return &Index{buckets: make([]atomic.Pointer[node], n), mask: uint64(n - 1)}
}

func hashKey(key []byte) uint64 {
	// FNV-1a, then a finalizer mix.
	h := uint64(1469598103934665603)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}

// Get returns the live IMRS entry for key, or nil. Packed entries read
// as absent (the row left the IMRS).
func (ix *Index) Get(key []byte) *imrs.Entry {
	b := &ix.buckets[hashKey(key)&ix.mask]
	for n := b.Load(); n != nil; n = n.next {
		if n.key == string(key) {
			if n.entry.Packed() {
				ix.Misses.Add(1)
				return nil
			}
			ix.Hits.Add(1)
			return n.entry
		}
	}
	ix.Misses.Add(1)
	return nil
}

// Put publishes key → e. An existing mapping for key is replaced.
func (ix *Index) Put(key []byte, e *imrs.Entry) {
	b := &ix.buckets[hashKey(key)&ix.mask]
	k := string(key)
	for {
		head := b.Load()
		// Copy-on-write: rebuild without any stale node for k, push new.
		nn := &node{key: k, entry: e}
		tail, replaced := copyWithout(head, k)
		nn.next = tail
		if b.CompareAndSwap(head, nn) {
			if !replaced {
				ix.count.Add(1)
			}
			return
		}
	}
}

// Delete removes the mapping for key if it currently points at e.
func (ix *Index) Delete(key []byte, e *imrs.Entry) {
	b := &ix.buckets[hashKey(key)&ix.mask]
	k := string(key)
	for {
		head := b.Load()
		present := false
		for n := head; n != nil; n = n.next {
			if n.key == k && n.entry == e {
				present = true
				break
			}
		}
		if !present {
			return
		}
		tail, _ := copyWithout(head, k)
		if b.CompareAndSwap(head, tail) {
			ix.count.Add(-1)
			return
		}
	}
}

// copyWithout returns a chain equal to head minus any node keyed k, and
// whether such a node existed. Untouched suffixes are shared.
func copyWithout(head *node, k string) (*node, bool) {
	// Find the victim; if none, share the whole chain.
	var victim *node
	for n := head; n != nil; n = n.next {
		if n.key == k {
			victim = n
			break
		}
	}
	if victim == nil {
		return head, false
	}
	// Copy nodes before the victim; share the rest.
	var first, last *node
	for n := head; n != victim; n = n.next {
		cp := &node{key: n.key, entry: n.entry}
		if last == nil {
			first = cp
		} else {
			last.next = cp
		}
		last = cp
	}
	if last == nil {
		return victim.next, true
	}
	last.next = victim.next
	return first, true
}

// Len returns the number of mappings.
func (ix *Index) Len() int { return int(ix.count.Load()) }

// Buckets returns the fixed bucket count chosen at construction.
func (ix *Index) Buckets() int { return len(ix.buckets) }

// LoadFactor returns entries per bucket. The table never resizes
// (paper Section II sizes it once per table), so this is the signal
// that the sizing decision is starting to degrade lookups: chains
// average LoadFactor nodes, and Get walks half a chain on a hit.
func (ix *Index) LoadFactor() float64 {
	return float64(ix.count.Load()) / float64(len(ix.buckets))
}
