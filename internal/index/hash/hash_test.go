package hash

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/imrs"
	"repro/internal/rid"
)

func entry(i int) *imrs.Entry {
	return &imrs.Entry{RID: rid.NewVirtual(0, uint64(i))}
}

func TestPutGetDelete(t *testing.T) {
	ix := New(16)
	e := entry(1)
	k := []byte("alpha")
	if ix.Get(k) != nil {
		t.Fatal("empty index returned entry")
	}
	ix.Put(k, e)
	if ix.Get(k) != e {
		t.Fatal("Get after Put failed")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d", ix.Len())
	}
	ix.Delete(k, e)
	if ix.Get(k) != nil {
		t.Fatal("entry survives delete")
	}
	if ix.Len() != 0 {
		t.Fatalf("Len = %d after delete", ix.Len())
	}
}

func TestPutReplaces(t *testing.T) {
	ix := New(16)
	k := []byte("k")
	e1, e2 := entry(1), entry(2)
	ix.Put(k, e1)
	ix.Put(k, e2)
	if ix.Get(k) != e2 {
		t.Fatal("Put did not replace")
	}
	if ix.Len() != 1 {
		t.Fatalf("Len = %d after replace", ix.Len())
	}
}

func TestDeleteOnlyMatching(t *testing.T) {
	ix := New(16)
	k := []byte("k")
	e1, e2 := entry(1), entry(2)
	ix.Put(k, e1)
	ix.Delete(k, e2) // different entry: no-op
	if ix.Get(k) != e1 {
		t.Fatal("Delete removed non-matching entry")
	}
}

func TestPackedEntryReadsAbsent(t *testing.T) {
	ix := New(16)
	k := []byte("k")
	e := entry(1)
	ix.Put(k, e)
	e.MarkPacked()
	if ix.Get(k) != nil {
		t.Fatal("packed entry returned")
	}
}

func TestCollisions(t *testing.T) {
	// Tiny table forces chains.
	ix := New(1)
	const n = 1000
	entries := make([]*imrs.Entry, n)
	for i := 0; i < n; i++ {
		entries[i] = entry(i)
		ix.Put([]byte(fmt.Sprintf("key-%d", i)), entries[i])
	}
	for i := 0; i < n; i++ {
		if ix.Get([]byte(fmt.Sprintf("key-%d", i))) != entries[i] {
			t.Fatalf("key %d lost in chain", i)
		}
	}
	for i := 0; i < n; i += 2 {
		ix.Delete([]byte(fmt.Sprintf("key-%d", i)), entries[i])
	}
	for i := 0; i < n; i++ {
		got := ix.Get([]byte(fmt.Sprintf("key-%d", i)))
		if i%2 == 0 && got != nil {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && got != entries[i] {
			t.Fatalf("surviving key %d lost", i)
		}
	}
}

func TestConcurrentMixed(t *testing.T) {
	ix := New(64)
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				k := []byte(fmt.Sprintf("w%d-k%d", w, i))
				e := entry(w*per + i)
				ix.Put(k, e)
				if got := ix.Get(k); got != e {
					t.Errorf("own key lost: %s", k)
					return
				}
				if i%3 == 0 {
					ix.Delete(k, e)
					if ix.Get(k) != nil {
						t.Errorf("deleted key visible: %s", k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestHitMissCounters(t *testing.T) {
	ix := New(16)
	ix.Put([]byte("a"), entry(1))
	ix.Get([]byte("a"))
	ix.Get([]byte("b"))
	if ix.Hits.Load() != 1 || ix.Misses.Load() != 1 {
		t.Fatalf("hits=%d misses=%d", ix.Hits.Load(), ix.Misses.Load())
	}
}

func TestOccupancy(t *testing.T) {
	ix := New(16) // floor is 256 buckets
	if ix.Buckets() != 256 {
		t.Fatalf("Buckets = %d, want 256", ix.Buckets())
	}
	if ix.LoadFactor() != 0 {
		t.Fatalf("empty LoadFactor = %v", ix.LoadFactor())
	}
	for i := 0; i < 384; i++ {
		ix.Put([]byte{byte(i), byte(i >> 8)}, entry(i))
	}
	if got := ix.LoadFactor(); got != 1.5 {
		t.Fatalf("LoadFactor = %v, want 1.5", got)
	}
	// New rounds up to a power of two above the floor.
	if got := New(300).Buckets(); got != 512 {
		t.Fatalf("Buckets(New(300)) = %d, want 512", got)
	}
}
