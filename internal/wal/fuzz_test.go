package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord hammers the record-body parser with arbitrary bytes.
// decodeRecord guards recovery: it must reject malformed input with an
// error, never panic, and the encoding must stay canonical (a body that
// decodes successfully re-encodes to the identical bytes).
func FuzzDecodeRecord(f *testing.F) {
	for _, rec := range []Record{
		{Type: RecCommit, TxnID: 7, CommitTS: 42},
		{Type: RecHeapUpdate, TxnID: 1, Table: 3, RID: 9,
			Before: []byte("old"), After: []byte("new")},
		{Type: RecIMRSInsert, TxnID: 2, Table: 1, RID: 5, Aux: 1,
			After: bytes.Repeat([]byte{0xab}, 100)},
		{Type: RecCheckpoint, After: []byte("{}")},
	} {
		f.Add(rec.encode(nil))
	}
	// Regression: a varlen length near 2^64 used to wrap the int bounds
	// arithmetic and panic the slice expression.
	huge := append(make([]byte, 30), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)
	f.Add(huge)
	f.Add([]byte{})
	f.Add(make([]byte, 31))

	f.Fuzz(func(t *testing.T, body []byte) {
		rec, err := decodeRecord(body)
		if err != nil {
			return
		}
		if got := rec.encode(nil); !bytes.Equal(got, body) {
			t.Fatalf("decode/encode round trip drifted:\n in  %x\n out %x", body, got)
		}
	})
}
