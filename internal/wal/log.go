package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
)

// frame layout: [4 bodyLen][4 crc32(body)][body]
const frameHeader = 8

// Log is an append-only record log with group flush. LSNs are the byte
// offset of a record's frame plus one (so LSN 0 means "nothing logged").
// Appends buffer in memory; Flush persists buffered frames up to a target
// LSN and syncs, implementing the write-ahead rule and group commit.
type Log struct {
	backend Backend

	mu      sync.Mutex
	pending []byte // appended but not yet handed to the backend
	base    int64  // backend size == offset of pending[0]

	nextLSN    atomic.Uint64 // next LSN to hand out
	flushedLSN atomic.Uint64 // durable prefix

	stats LogStats
}

// LogStats counts log activity.
type LogStats struct {
	Appends atomic.Int64
	Flushes atomic.Int64
	Bytes   atomic.Int64
}

// NewLog opens a Log over backend, continuing after existing content.
func NewLog(backend Backend) (*Log, error) {
	size, err := backend.Size()
	if err != nil {
		return nil, err
	}
	l := &Log{backend: backend, base: size}
	l.nextLSN.Store(uint64(size) + 1)
	l.flushedLSN.Store(uint64(size) + 1 - 1)
	return l, nil
}

// Append buffers rec and returns its LSN. The record is not durable
// until Flush covers the returned LSN.
func (l *Log) Append(rec *Record) (uint64, error) {
	body := rec.encode(nil)
	if len(body) > 0xFFFFFFF {
		return 0, fmt.Errorf("wal: record of %d bytes too large", len(body))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(body))

	l.mu.Lock()
	lsn := uint64(l.base) + uint64(len(l.pending)) + 1
	l.pending = append(l.pending, hdr[:]...)
	l.pending = append(l.pending, body...)
	l.nextLSN.Store(uint64(l.base) + uint64(len(l.pending)) + 1)
	l.mu.Unlock()

	rec.LSN = lsn
	l.stats.Appends.Add(1)
	l.stats.Bytes.Add(int64(len(body) + frameHeader))
	return lsn, nil
}

// Flush makes all records with LSN <= lsn durable. Flushing an
// already-durable LSN is a no-op.
func (l *Log) Flush(lsn uint64) error {
	if l.flushedLSN.Load() >= lsn {
		return nil
	}
	l.mu.Lock()
	if l.flushedLSN.Load() >= lsn {
		l.mu.Unlock()
		return nil
	}
	pending := l.pending
	l.pending = nil
	newBase := l.base + int64(len(pending))
	if len(pending) > 0 {
		if _, err := l.backend.Append(pending); err != nil {
			// Restore the buffer so a retry can succeed.
			l.pending = pending
			l.mu.Unlock()
			return err
		}
		l.base = newBase
	}
	l.mu.Unlock()

	if err := l.backend.Sync(); err != nil {
		return err
	}
	// Everything buffered at the time of the call is now durable.
	for {
		cur := l.flushedLSN.Load()
		target := uint64(newBase)
		if cur >= target || l.flushedLSN.CompareAndSwap(cur, target) {
			break
		}
	}
	l.stats.Flushes.Add(1)
	return nil
}

// FlushAll persists everything appended so far.
func (l *Log) FlushAll() error {
	return l.Flush(l.nextLSN.Load() - 1)
}

// FlushedLSN returns the durable prefix.
func (l *Log) FlushedLSN() uint64 { return l.flushedLSN.Load() }

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 { return l.nextLSN.Load() }

// Stats exposes the log counters.
func (l *Log) Stats() *LogStats { return &l.stats }

// Size returns the total log size in bytes (durable plus buffered).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + int64(len(l.pending))
}

// Close flushes and closes the backend.
func (l *Log) Close() error {
	if err := l.FlushAll(); err != nil {
		return err
	}
	return l.backend.Close()
}

// Reader iterates records in LSN order. Readers see only flushed
// content; call FlushAll before reading a live log.
type Reader struct {
	backend Backend
	off     int64
	end     int64
}

// NewReader returns a reader positioned at fromLSN (or the log start
// when fromLSN <= 1). The reader covers records durable at call time.
func (l *Log) NewReader(fromLSN uint64) (*Reader, error) {
	if err := l.FlushAll(); err != nil {
		return nil, err
	}
	size, err := l.backend.Size()
	if err != nil {
		return nil, err
	}
	off := int64(0)
	if fromLSN > 1 {
		off = int64(fromLSN - 1)
	}
	return &Reader{backend: l.backend, off: off, end: size}, nil
}

// Next returns the next record, or io.EOF at the end. A torn or corrupt
// frame terminates iteration with an error describing it.
func (r *Reader) Next() (Record, error) {
	if r.off >= r.end {
		return Record{}, io.EOF
	}
	var hdr [frameHeader]byte
	if r.off+frameHeader > r.end {
		return Record{}, fmt.Errorf("wal: torn frame header at %d", r.off)
	}
	if _, err := r.backend.ReadAt(hdr[:], r.off); err != nil {
		return Record{}, err
	}
	bodyLen := int64(binary.LittleEndian.Uint32(hdr[0:]))
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if r.off+frameHeader+bodyLen > r.end {
		return Record{}, fmt.Errorf("wal: torn frame body at %d", r.off)
	}
	body := make([]byte, bodyLen)
	if _, err := r.backend.ReadAt(body, r.off+frameHeader); err != nil {
		return Record{}, err
	}
	if crc32.ChecksumIEEE(body) != wantCRC {
		return Record{}, fmt.Errorf("wal: CRC mismatch at %d", r.off)
	}
	rec, err := decodeRecord(body)
	if err != nil {
		return Record{}, err
	}
	rec.LSN = uint64(r.off) + 1
	r.off += frameHeader + bodyLen
	return rec, nil
}
