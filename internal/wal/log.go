package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/metrics"
)

// frame layout: [4 bodyLen][4 crc32(body)][body]
const frameHeader = 8

// maxEncBuf bounds the capacity of encode buffers returned to the pool,
// so one huge record does not pin a huge buffer forever.
const maxEncBuf = 64 << 10

// ErrTorn marks a frame that is incomplete or fails its checksum — the
// signature of a write cut short by a crash. Recovery calls RepairTail
// to cut a torn tail off the backend before the log accepts new
// appends.
var ErrTorn = errors.New("wal: torn or corrupt frame")

// ErrPoisoned is returned by Append/Flush after a commit-path flush
// failure. Committers in the failed round rolled back in memory, so
// their already-appended frames (commit markers included) must never
// become durable: the log refuses all further writes and best-effort
// truncates the backend back to the durable watermark.
var ErrPoisoned = errors.New("wal: log poisoned by a failed commit flush")

// Log is an append-only record log with group flush. LSNs are the byte
// offset of a record's frame plus one (so LSN 0 means "nothing logged").
// Appends buffer in memory; Flush persists buffered frames up to a target
// LSN and syncs, implementing the write-ahead rule. Group commit is the
// committer-facing layer on top: StartGroupCommit launches a flusher
// goroutine and WaitDurable coalesces concurrent committers' durability
// requests into single backend writes (see groupcommit.go).
type Log struct {
	backend Backend

	mu       sync.Mutex
	pending  []byte // appended but not yet handed to the backend
	base     int64  // backend size == offset of pending[0]
	poisoned error  // set after a commit-path flush failure; see poison

	nextLSN    atomic.Uint64 // next LSN to hand out
	flushedLSN atomic.Uint64 // durable prefix

	// retrier absorbs transient backend failures during Flush before
	// they can escalate into poisoning. Set once at open time via
	// SetRetrier; nil means no retry.
	retrier *fault.Retrier

	stats LogStats

	// Group-commit pipeline state (groupcommit.go).
	gcMu      sync.Mutex
	gcRunning bool
	gcHalted  atomic.Bool // AbortGroupCommit ran: commit path is dead
	gcWaiters []gcWaiter
	gcWake    chan struct{}
	gcStop    chan struct{}
	gcDone    chan struct{}

	groupSize  metrics.SizeHistogram    // committers coalesced per flush
	commitWait metrics.LatencyHistogram // WaitDurable blocking time
}

// LogStats counts log activity. Appends/Bytes count only records that
// actually entered the log (validation failures are not counted);
// Flushes counts successful backend syncs.
type LogStats struct {
	Appends atomic.Int64
	Flushes atomic.Int64
	Bytes   atomic.Int64

	// GroupFlushes / GroupedCommits count flusher rounds and the
	// committers they served; their ratio is the mean group size.
	GroupFlushes   atomic.Int64
	GroupedCommits atomic.Int64
}

// NewLog opens a Log over backend, continuing after existing content.
func NewLog(backend Backend) (*Log, error) {
	size, err := backend.Size()
	if err != nil {
		return nil, err
	}
	l := &Log{backend: backend, base: size}
	l.nextLSN.Store(uint64(size) + 1)
	l.flushedLSN.Store(uint64(size) + 1 - 1)
	return l, nil
}

// encPool recycles per-append encode buffers: each Append encodes the
// frame (header + body) into a pooled buffer and copies it into pending
// once, instead of allocating a fresh body slice per record.
var encPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// Append buffers rec and returns its LSN. The record is not durable
// until a flush covers the returned LSN.
func (l *Log) Append(rec *Record) (uint64, error) {
	bp := encPool.Get().(*[]byte)
	buf := (*bp)[:0]
	var hdr [frameHeader]byte
	buf = append(buf, hdr[:]...)
	buf = rec.encode(buf)
	body := buf[frameHeader:]
	if len(body) > 0xFFFFFFF {
		n := len(body)
		encPool.Put(bp)
		return 0, fmt.Errorf("wal: record of %d bytes too large", n)
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(body))

	l.mu.Lock()
	if l.poisoned != nil {
		err := l.poisoned
		l.mu.Unlock()
		if cap(buf) <= maxEncBuf {
			*bp = buf[:0]
			encPool.Put(bp)
		}
		return 0, err
	}
	lsn := uint64(l.base) + uint64(len(l.pending)) + 1
	l.pending = append(l.pending, buf...)
	l.nextLSN.Store(uint64(l.base) + uint64(len(l.pending)) + 1)
	l.mu.Unlock()

	frameLen := int64(len(buf))
	if cap(buf) <= maxEncBuf {
		*bp = buf[:0]
		encPool.Put(bp)
	}
	rec.LSN = lsn
	l.stats.Appends.Add(1)
	l.stats.Bytes.Add(frameLen)
	return lsn, nil
}

// Flush makes all records with LSN <= lsn durable. Flushing an
// already-durable LSN is a no-op.
func (l *Log) Flush(lsn uint64) error {
	if l.flushedLSN.Load() >= lsn {
		return nil
	}
	l.mu.Lock()
	if l.flushedLSN.Load() >= lsn {
		l.mu.Unlock()
		return nil
	}
	if l.poisoned != nil {
		err := l.poisoned
		l.mu.Unlock()
		return err
	}
	pending := l.pending
	l.pending = nil
	newBase := l.base + int64(len(pending))
	if len(pending) > 0 {
		// Retry transient append failures in place (holding l.mu keeps the
		// buffered tail consistent; the backoff delays are sub-millisecond
		// by default). Safe because a failed Append writes nothing the
		// backend acknowledges: FileBackend only advances its size on
		// success and MemBackend appends atomically, so re-running the
		// same batch never duplicates frames.
		if err := l.retrier.Do(func() error {
			_, aerr := l.backend.Append(pending)
			return aerr
		}); err != nil {
			// Restore the buffer so a retry can succeed.
			l.pending = pending
			l.mu.Unlock()
			return err
		}
		l.base = newBase
	}
	l.mu.Unlock()

	// A racing flusher may have synced past lsn while we waited for the
	// buffer swap; skip the redundant Sync. (Our own freshly appended
	// bytes beyond lsn stay buffered in the backend until a later sync.)
	if l.flushedLSN.Load() >= lsn {
		return nil
	}
	if err := l.retrier.Do(l.backend.Sync); err != nil {
		return err
	}
	// Everything buffered at the time of the call is now durable.
	for {
		cur := l.flushedLSN.Load()
		target := uint64(newBase)
		if cur >= target || l.flushedLSN.CompareAndSwap(cur, target) {
			break
		}
	}
	l.stats.Flushes.Add(1)
	return nil
}

// FlushAll persists everything appended so far.
func (l *Log) FlushAll() error {
	return l.Flush(l.nextLSN.Load() - 1)
}

// poison marks the log unusable after a commit-path flush failure.
// Every committer in the failed round was told its commit failed and
// unwound its in-memory state, yet its frames — commit markers
// included — may sit in the pending buffer (append failure) or in the
// backend unsynced (sync failure). Were a later flush to succeed, those
// records would become durable and recovery would replay transactions
// the live engine rolled back. So: refuse all further appends and
// flushes, drop the buffered tail, and cut the backend back to the
// durable watermark. The truncate is best effort — a dead device may
// refuse it, in which case the poisoned log still never flushes again
// and the torn-tail repair at the next open cleans what the failed
// batch left on the medium.
func (l *Log) poison(cause error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned != nil {
		return
	}
	l.poisoned = fmt.Errorf("%w (cause: %v)", ErrPoisoned, cause)
	l.pending = nil
	durable := int64(l.flushedLSN.Load())
	if err := l.backend.Truncate(durable); err == nil {
		l.base = durable
		l.nextLSN.Store(uint64(durable) + 1)
	}
}

// RepairTail scans the log for a torn frame left by a crashed write
// and truncates the backend back to the last valid frame boundary.
// Without the truncation the log would resume appending past the
// garbage (NewLog bases LSNs on the raw backend size), and every
// future reader — including recovery after a second crash — would stop
// at the old tear and silently lose acknowledged records appended
// after it. A torn frame followed by a valid frame is mid-log
// corruption rather than a tail tear; RepairTail refuses to repair it.
// It returns the number of bytes discarded and must run before the log
// accepts appends (Open/recovery time).
func (l *Log) RepairTail() (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.pending) > 0 {
		return 0, fmt.Errorf("wal: RepairTail on a log with buffered appends")
	}
	size := l.base
	off := int64(0)
	for off < size {
		next, valid, err := l.checkFrame(off, size)
		if err != nil {
			return 0, err
		}
		if valid {
			off = next
			continue
		}
		// Torn frame at off. Walk the claimed frame extents behind it: a
		// valid frame there means the tear is not at the tail.
		for scan := next; scan < size; {
			n2, v2, err := l.checkFrame(scan, size)
			if err != nil {
				return 0, err
			}
			if v2 {
				return 0, fmt.Errorf("wal: torn frame at offset %d precedes a valid frame at %d: mid-log corruption, not a tail tear", off, scan)
			}
			scan = n2
		}
		if err := l.backend.Truncate(off); err != nil {
			return 0, fmt.Errorf("wal: truncating torn tail at %d: %w", off, err)
		}
		l.base = off
		l.nextLSN.Store(uint64(off) + 1)
		l.flushedLSN.Store(uint64(off))
		return size - off, nil
	}
	return 0, nil
}

// checkFrame validates the frame at off against a log of the given
// size: next is where the following frame would start (when the header
// is readable), valid reports a complete frame with a matching
// checksum, err reports an I/O failure. Callers hold l.mu.
func (l *Log) checkFrame(off, size int64) (next int64, valid bool, err error) {
	if off+frameHeader > size {
		return size, false, nil
	}
	var hdr [frameHeader]byte
	if _, err := l.backend.ReadAt(hdr[:], off); err != nil {
		return 0, false, err
	}
	bodyLen := int64(binary.LittleEndian.Uint32(hdr[0:]))
	next = off + frameHeader + bodyLen
	if next > size {
		return next, false, nil
	}
	body := make([]byte, bodyLen)
	if _, err := l.backend.ReadAt(body, off+frameHeader); err != nil {
		return 0, false, err
	}
	valid = crc32.ChecksumIEEE(body) == binary.LittleEndian.Uint32(hdr[4:])
	return next, valid, nil
}

// SetRetrier installs the transient-failure retrier used by Flush.
// Call before the log sees traffic (open/recovery time); a nil r
// disables retries.
func (l *Log) SetRetrier(r *fault.Retrier) { l.retrier = r }

// Poisoned returns the poisoning error (wrapping ErrPoisoned and the
// root-cause flush failure), or nil while the log is healthy.
func (l *Log) Poisoned() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poisoned
}

// FlushedLSN returns the durable prefix.
func (l *Log) FlushedLSN() uint64 { return l.flushedLSN.Load() }

// NextLSN returns the LSN the next append will receive.
func (l *Log) NextLSN() uint64 { return l.nextLSN.Load() }

// Stats exposes the log counters.
func (l *Log) Stats() *LogStats { return &l.stats }

// GroupSizeHist exposes the committers-per-flush histogram.
func (l *Log) GroupSizeHist() *metrics.SizeHistogram { return &l.groupSize }

// CommitWaitHist exposes the WaitDurable latency histogram.
func (l *Log) CommitWaitHist() *metrics.LatencyHistogram { return &l.commitWait }

// Size returns the total log size in bytes (durable plus buffered).
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base + int64(len(l.pending))
}

// Close stops the group-commit flusher (if running), flushes, and
// closes the backend. The backend is closed even when the final flush
// fails — a poisoned log must still release its file handle — and the
// returned error aggregates every failure (errors.Is sees each). A
// poisoned log always reports its poisoning here, even though poison()
// already emptied the buffered tail and a flush would trivially
// "succeed": callers asking to close cleanly must learn the log died.
func (l *Log) Close() error {
	l.StopGroupCommit()
	var flushErr error
	if l.Poisoned() == nil {
		flushErr = l.FlushAll()
	}
	return errors.Join(l.Poisoned(), flushErr, l.backend.Close())
}

// CloseBackend releases the backend WITHOUT flushing the buffered
// tail. This is the crash-exact release for a halted log: Close would
// flush records whose committers were already told they failed,
// resurrecting rolled-back transactions at the next recovery. Used
// when a halted engine's file handles must be freed so a fresh
// incarnation can open the same paths.
func (l *Log) CloseBackend() error {
	l.StopGroupCommit()
	return l.backend.Close()
}

// Reader iterates records in LSN order. Readers see only flushed
// content; call FlushAll before reading a live log.
type Reader struct {
	backend Backend
	off     int64
	end     int64
}

// NewReader returns a reader positioned at fromLSN (or the log start
// when fromLSN <= 1). The reader covers records durable at call time.
func (l *Log) NewReader(fromLSN uint64) (*Reader, error) {
	if err := l.FlushAll(); err != nil {
		return nil, err
	}
	size, err := l.backend.Size()
	if err != nil {
		return nil, err
	}
	off := int64(0)
	if fromLSN > 1 {
		off = int64(fromLSN - 1)
	}
	return &Reader{backend: l.backend, off: off, end: size}, nil
}

// Next returns the next record, or io.EOF at the end. An incomplete or
// checksum-failing frame terminates iteration with an error wrapping
// ErrTorn (recovery treats it as the end of the durable log); a frame
// that decodes inconsistently despite a valid checksum is reported as
// plain corruption.
func (r *Reader) Next() (Record, error) {
	if r.off >= r.end {
		return Record{}, io.EOF
	}
	var hdr [frameHeader]byte
	if r.off+frameHeader > r.end {
		return Record{}, fmt.Errorf("wal: frame header cut short at %d: %w", r.off, ErrTorn)
	}
	if _, err := r.backend.ReadAt(hdr[:], r.off); err != nil {
		return Record{}, err
	}
	bodyLen := int64(binary.LittleEndian.Uint32(hdr[0:]))
	wantCRC := binary.LittleEndian.Uint32(hdr[4:])
	if r.off+frameHeader+bodyLen > r.end {
		return Record{}, fmt.Errorf("wal: frame body cut short at %d: %w", r.off, ErrTorn)
	}
	body := make([]byte, bodyLen)
	if _, err := r.backend.ReadAt(body, r.off+frameHeader); err != nil {
		return Record{}, err
	}
	if crc32.ChecksumIEEE(body) != wantCRC {
		return Record{}, fmt.Errorf("wal: CRC mismatch at %d: %w", r.off, ErrTorn)
	}
	rec, err := decodeRecord(body)
	if err != nil {
		return Record{}, err
	}
	rec.LSN = uint64(r.off) + 1
	r.off += frameHeader + bodyLen
	return rec, nil
}
