package wal

import (
	"sync/atomic"
	"time"
)

// SlowBackend wraps a Backend with a simulated log-device cost model: a
// fixed per-sync latency plus a write-bandwidth budget. Sync sleeps
// SyncLatency + (bytes appended since the last sync)/BytesPerSec before
// delegating. Group commit amortizes the fixed latency across a batch,
// but the bandwidth term scales with the bytes actually logged — which
// is what makes a single log device the throughput ceiling no matter
// how well committers coalesce, and what sharding onto independent
// devices lifts. This is the same substitution DESIGN.md makes for
// device read latency (recoverybench): in-memory media stand in for
// disks, with the disk's costs modelled explicitly.
type SlowBackend struct {
	inner       Backend
	syncLatency time.Duration
	bytesPerSec int64

	pending atomic.Int64 // bytes appended since the last Sync

	// Sleep is the delay function (tests may pin it). Nil means
	// time.Sleep.
	Sleep func(time.Duration)
}

// NewSlowBackend wraps inner with the given per-sync latency and write
// bandwidth (bytes/second; 0 means unlimited).
func NewSlowBackend(inner Backend, syncLatency time.Duration, bytesPerSec int64) *SlowBackend {
	return &SlowBackend{inner: inner, syncLatency: syncLatency, bytesPerSec: bytesPerSec}
}

// Append implements Backend, charging p against the bandwidth budget of
// the next Sync.
func (b *SlowBackend) Append(p []byte) (int64, error) {
	off, err := b.inner.Append(p)
	if err == nil {
		b.pending.Add(int64(len(p)))
	}
	return off, err
}

// ReadAt implements Backend.
func (b *SlowBackend) ReadAt(p []byte, off int64) (int, error) { return b.inner.ReadAt(p, off) }

// Size implements Backend.
func (b *SlowBackend) Size() (int64, error) { return b.inner.Size() }

// Truncate implements Backend.
func (b *SlowBackend) Truncate(n int64) error { return b.inner.Truncate(n) }

// Sync implements Backend: it pays the modelled device cost for the
// bytes appended since the last sync, then syncs the inner backend.
// Bytes appended concurrently with a Sync are charged to the next one.
func (b *SlowBackend) Sync() error {
	d := b.syncLatency
	if n := b.pending.Swap(0); n > 0 && b.bytesPerSec > 0 {
		d += time.Duration(n * int64(time.Second) / b.bytesPerSec)
	}
	if d > 0 {
		if b.Sleep != nil {
			b.Sleep(d)
		} else {
			time.Sleep(d)
		}
	}
	return b.inner.Sync()
}

// Close implements Backend.
func (b *SlowBackend) Close() error { return b.inner.Close() }
