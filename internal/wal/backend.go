// Package wal implements the two write-ahead logs of the BTrim
// architecture: syslogs, the redo/undo log for page-store changes, and
// sysimrslogs, the redo-only log for IMRS changes (paper Section II).
// Both are append-only record streams with group flush; the engine
// composes them and recovery replays them in lock-step order.
package wal

import (
	"fmt"
	"os"
	"sync"
)

// Backend is the append-only byte store under a log.
type Backend interface {
	// Append writes p at the current end and returns the offset at which
	// p begins.
	Append(p []byte) (int64, error)
	// ReadAt reads len(p) bytes at offset off.
	ReadAt(p []byte, off int64) (int, error)
	// Size returns the current end offset.
	Size() (int64, error)
	// Truncate discards everything past size bytes. Recovery uses it to
	// cut a torn final frame off the log before new appends resume, and
	// a poisoned log uses it to scrub frames whose committers were told
	// the commit failed.
	Truncate(size int64) error
	// Sync durably flushes appended bytes.
	Sync() error
	Close() error
}

// MemBackend is an in-memory Backend for tests and benchmarks.
type MemBackend struct {
	mu  sync.RWMutex
	buf []byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// Append implements Backend.
func (b *MemBackend) Append(p []byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	off := int64(len(b.buf))
	b.buf = append(b.buf, p...)
	return off, nil
}

// ReadAt implements Backend.
func (b *MemBackend) ReadAt(p []byte, off int64) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if off >= int64(len(b.buf)) {
		return 0, fmt.Errorf("wal: read at %d beyond end %d", off, len(b.buf))
	}
	n := copy(p, b.buf[off:])
	if n < len(p) {
		return n, fmt.Errorf("wal: short read at %d", off)
	}
	return n, nil
}

// Size implements Backend.
func (b *MemBackend) Size() (int64, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return int64(len(b.buf)), nil
}

// Sync implements Backend (no-op).
func (b *MemBackend) Sync() error { return nil }

// Close implements Backend (no-op).
func (b *MemBackend) Close() error { return nil }

// Clone returns an independent copy of the backend's current durable
// content (crash-simulation tests).
func (b *MemBackend) Clone() *MemBackend {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return &MemBackend{buf: append([]byte(nil), b.buf...)}
}

// Truncate implements Backend. Tests also use it directly to simulate
// a medium that lost its tail in a crash (torn final frames).
func (b *MemBackend) Truncate(n int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n < int64(len(b.buf)) {
		b.buf = b.buf[:n]
	}
	return nil
}

// FileBackend is a file-backed Backend.
type FileBackend struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

// OpenFileBackend opens (creating if needed) the log file at path.
func OpenFileBackend(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	return &FileBackend{f: f, size: fi.Size()}, nil
}

// Append implements Backend.
func (b *FileBackend) Append(p []byte) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	off := b.size
	if _, err := b.f.WriteAt(p, off); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	b.size += int64(len(p))
	return off, nil
}

// ReadAt implements Backend.
func (b *FileBackend) ReadAt(p []byte, off int64) (int, error) {
	return b.f.ReadAt(p, off)
}

// Size implements Backend.
func (b *FileBackend) Size() (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.size, nil
}

// Truncate implements Backend.
func (b *FileBackend) Truncate(n int64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.f.Truncate(n); err != nil {
		return fmt.Errorf("wal: truncate: %w", err)
	}
	if n < b.size {
		b.size = n
	}
	return nil
}

// Sync implements Backend.
func (b *FileBackend) Sync() error { return b.f.Sync() }

// Close implements Backend.
func (b *FileBackend) Close() error { return b.f.Close() }
