package wal

import (
	"errors"
	"runtime"
	"time"
)

// ErrHalted is delivered to committers whose group-commit pipeline was
// torn down by AbortGroupCommit before their records became durable
// (crash simulation: the commit was never acknowledged).
var ErrHalted = errors.New("wal: group commit halted before the record became durable")

// Group commit: a dedicated flusher goroutine per Log coalesces
// concurrent committers' durability requests into one backend write plus
// one Sync covering the highest pending LSN, then wakes every waiter
// under the new durable watermark. N committers arriving while a sync is
// in flight pay one sync between them instead of N serialized syncs —
// the log-coalescing idea of Aether (Johnson et al., VLDB 2010) applied
// to both BTrim logs.
//
// The pipeline is optional: with no flusher running, WaitDurable
// degrades to a direct synchronous Flush, so single-threaded and test
// paths keep their current latency.

// GroupCommitConfig tunes the flusher goroutine.
type GroupCommitConfig struct {
	// MaxDelay is the longest the flusher lingers after waking before it
	// flushes, giving more committers a chance to join the group. 0
	// flushes immediately: batching then arises naturally from committers
	// that arrive while a sync is in flight, which keeps single-committer
	// latency at the direct-flush baseline.
	MaxDelay time.Duration
	// MaxBatchBytes cuts a MaxDelay linger short once this many bytes sit
	// unflushed in the log buffer. 0 means no byte trigger.
	MaxBatchBytes int
}

// gcWaiter is one committer blocked in WaitDurable.
type gcWaiter struct {
	lsn uint64
	ch  chan error
	at  time.Time
}

// StartGroupCommit launches the flusher goroutine. It is a no-op if the
// pipeline is already running.
func (l *Log) StartGroupCommit(cfg GroupCommitConfig) {
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	if l.gcRunning {
		return
	}
	l.gcRunning = true
	l.gcWake = make(chan struct{}, 1)
	l.gcStop = make(chan struct{})
	l.gcDone = make(chan struct{})
	go l.flusherLoop(cfg, l.gcWake, l.gcStop, l.gcDone)
}

// StopGroupCommit stops the flusher goroutine, completing any committers
// still waiting (their records flush in one final group). Subsequent
// WaitDurable calls fall back to direct synchronous flushes. No-op if
// the pipeline is not running.
func (l *Log) StopGroupCommit() { l.stopGroupCommit(false) }

// AbortGroupCommit tears the pipeline down crash-style: no final flush
// runs, queued committers receive ErrHalted (unless their LSN is
// already durable), and later WaitDurable calls fail the same way
// instead of falling back to a direct flush. Nothing further reaches
// the backend through the commit path, so the durable state stays
// exactly what a crash at this instant would leave (Engine.Halt).
func (l *Log) AbortGroupCommit() { l.stopGroupCommit(true) }

func (l *Log) stopGroupCommit(abort bool) {
	l.gcMu.Lock()
	if abort {
		// Set before the flusher drains so its final round fails rather
		// than flushes, and so fallback flushes are refused even when the
		// pipeline never ran (DisableGroupCommit configurations).
		l.gcHalted.Store(true)
	}
	if !l.gcRunning {
		l.gcMu.Unlock()
		return
	}
	l.gcRunning = false
	stop, done := l.gcStop, l.gcDone
	l.gcMu.Unlock()
	close(stop)
	<-done
}

// WaitDurable blocks until every record with LSN <= lsn is durable. With
// the pipeline running it enqueues a waiter for the flusher; otherwise
// it flushes directly (synchronous fallback).
func (l *Log) WaitDurable(lsn uint64) error {
	if l.flushedLSN.Load() >= lsn {
		return nil
	}
	l.gcMu.Lock()
	if !l.gcRunning {
		halted := l.gcHalted.Load()
		l.gcMu.Unlock()
		if halted {
			return ErrHalted
		}
		start := time.Now()
		err := l.Flush(lsn)
		l.commitWait.Observe(time.Since(start))
		if err != nil {
			if l.flushedLSN.Load() >= lsn {
				return nil // a racing flush covered us before the failure
			}
			l.poison(err)
		}
		return err
	}
	ch := make(chan error, 1)
	l.gcWaiters = append(l.gcWaiters, gcWaiter{lsn: lsn, ch: ch, at: time.Now()})
	wake := l.gcWake
	l.gcMu.Unlock()
	select {
	case wake <- struct{}{}:
	default: // flusher already signalled
	}
	return <-ch
}

// flusherLoop is the group-commit pipeline: wake, optionally linger to
// coalesce, flush once for everyone, repeat. On stop it runs one final
// round so no waiter is left blocked.
func (l *Log) flusherLoop(cfg GroupCommitConfig, wake, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	for {
		select {
		case <-stop:
			l.finalRound()
			return
		case <-wake:
		}
		// A wake can be stale: the round that served its sender may have
		// absorbed later committers too. Lingering on a stale wake would
		// leave nobody watching the wake channel, stalling the next
		// committer for the whole MaxDelay — so skip it.
		if !l.hasWaiters() {
			continue
		}
		if cfg.MaxDelay > 0 && !l.batchFull(cfg.MaxBatchBytes) {
			timer := time.NewTimer(cfg.MaxDelay)
		linger:
			for {
				select {
				case <-stop:
					timer.Stop()
					l.finalRound()
					return
				case <-timer.C:
					break linger
				case <-wake:
					// New committer joined mid-linger; flush early if the
					// batch is now big enough.
					if l.batchFull(cfg.MaxBatchBytes) {
						timer.Stop()
						break linger
					}
				}
			}
		}
		l.flushRound()
	}
}

// hasWaiters reports whether any committer is currently queued.
func (l *Log) hasWaiters() bool {
	l.gcMu.Lock()
	n := len(l.gcWaiters)
	l.gcMu.Unlock()
	return n > 0
}

// batchFull reports whether unflushed bytes already exceed the batch
// trigger.
func (l *Log) batchFull(maxBytes int) bool {
	if maxBytes <= 0 {
		return false
	}
	l.mu.Lock()
	n := len(l.pending)
	l.mu.Unlock()
	return n >= maxBytes
}

// flushRound takes the current waiter group, flushes through its highest
// LSN, and delivers the outcome to every member.
func (l *Log) flushRound() {
	// Committers woken by the previous round are often already runnable
	// with their next commit; one yield lets them enqueue and join this
	// group instead of waiting out a whole extra sync. (A timer-based
	// linger costs ~1ms of timer resolution; a yield is ~free.)
	runtime.Gosched()
	l.gcMu.Lock()
	waiters := l.gcWaiters
	l.gcWaiters = nil
	l.gcMu.Unlock()
	if len(waiters) == 0 {
		return
	}
	target := waiters[0].lsn
	for _, w := range waiters[1:] {
		if w.lsn > target {
			target = w.lsn
		}
	}
	err := l.Flush(target)
	if err == nil {
		l.stats.GroupFlushes.Add(1)
		l.stats.GroupedCommits.Add(int64(len(waiters)))
		l.groupSize.Observe(int64(len(waiters)))
	} else {
		// One bad flush fans out to every committer in the round; they
		// all roll back in memory, so none of their appended frames may
		// ever become durable.
		l.poison(err)
	}
	now := time.Now()
	for _, w := range waiters {
		werr := err
		if werr != nil && l.flushedLSN.Load() >= w.lsn {
			// A racing flush made this waiter durable before the failure:
			// its commit stands.
			werr = nil
		}
		l.commitWait.Observe(now.Sub(w.at))
		w.ch <- werr
	}
}

// finalRound drains the waiter queue at pipeline shutdown: a Stop
// flushes the last group, an Abort fails it without touching the
// backend.
func (l *Log) finalRound() {
	if l.gcHalted.Load() {
		l.failRound(ErrHalted)
		return
	}
	l.flushRound()
}

// failRound delivers err to every queued waiter without flushing.
// Waiters whose LSN is already durable still succeed.
func (l *Log) failRound(err error) {
	l.gcMu.Lock()
	waiters := l.gcWaiters
	l.gcWaiters = nil
	l.gcMu.Unlock()
	now := time.Now()
	for _, w := range waiters {
		werr := err
		if l.flushedLSN.Load() >= w.lsn {
			werr = nil
		}
		l.commitWait.Observe(now.Sub(w.at))
		w.ch <- werr
	}
}
