package wal

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rid"
)

// syncCountingBackend wraps MemBackend and counts Sync calls.
type syncCountingBackend struct {
	*MemBackend
	syncs atomic.Int64
}

func (b *syncCountingBackend) Sync() error {
	b.syncs.Add(1)
	return b.MemBackend.Sync()
}

func TestWaitDurableFallback(t *testing.T) {
	l, err := NewLog(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	// No flusher running: WaitDurable degrades to a direct Flush.
	lsn, err := l.Append(&Record{Type: RecCommit, TxnID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatal(err)
	}
	if l.FlushedLSN() < lsn {
		t.Fatal("fallback WaitDurable did not flush")
	}
	if got := l.Stats().GroupFlushes.Load(); got != 0 {
		t.Fatalf("fallback path counted %d group flushes", got)
	}
}

func TestGroupCommitCoalesces(t *testing.T) {
	b := &syncCountingBackend{MemBackend: NewMemBackend()}
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	// A linger window guarantees the concurrent committers below land in
	// a shared flush round.
	l.StartGroupCommit(GroupCommitConfig{MaxDelay: 5 * time.Millisecond})
	defer l.StopGroupCommit()

	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := Record{Type: RecIMRSInsert, TxnID: uint64(w), After: make([]byte, 64)}
				lsn, err := l.Append(&rec)
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.WaitDurable(lsn); err != nil {
					t.Error(err)
					return
				}
				if l.FlushedLSN() < lsn {
					t.Error("WaitDurable returned before LSN became durable")
					return
				}
			}
		}(w)
	}
	wg.Wait()

	total := int64(workers * per)
	if got := l.Stats().GroupedCommits.Load(); got != total {
		t.Fatalf("grouped commits = %d, want %d", got, total)
	}
	if syncs := b.syncs.Load(); syncs >= total {
		t.Fatalf("group commit did not coalesce: %d syncs for %d commits", syncs, total)
	}
	if mean := l.GroupSizeHist().Mean(); mean <= 1.0 {
		t.Fatalf("mean group size %.2f, want > 1", mean)
	}
	if l.CommitWaitHist().Count() != total {
		t.Fatalf("commit-wait samples = %d, want %d", l.CommitWaitHist().Count(), total)
	}

	// Every record survived, in order.
	r, err := l.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if int64(n) != total {
		t.Fatalf("read %d records, want %d", n, total)
	}
}

func TestGroupCommitStopCompletesWaiters(t *testing.T) {
	l, err := NewLog(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	// A long linger so waiters are still queued when Stop arrives.
	l.StartGroupCommit(GroupCommitConfig{MaxDelay: time.Hour})
	lsn, _ := l.Append(&Record{Type: RecCommit, TxnID: 1})
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(lsn) }()
	time.Sleep(10 * time.Millisecond)
	l.StopGroupCommit()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter completed with error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter still blocked after StopGroupCommit")
	}
	if l.FlushedLSN() < lsn {
		t.Fatal("final round did not flush the waiter's LSN")
	}
}

func TestGroupCommitBatchBytesCutsDelayShort(t *testing.T) {
	l, err := NewLog(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	l.StartGroupCommit(GroupCommitConfig{MaxDelay: time.Hour, MaxBatchBytes: 1})
	defer l.StopGroupCommit()
	lsn, _ := l.Append(&Record{Type: RecCommit, TxnID: 1})
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(lsn) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("byte trigger did not cut the delay short")
	}
}

// A flush round can absorb committers whose wake signal is still sitting
// in the channel. The flusher must not treat such a stale wake as the
// start of a linger: with nobody left watching the wake channel, the
// next committer would stall for the full MaxDelay (observed as a hang
// with MaxDelay=1h through the public API).
func TestGroupCommitStaleWakeDoesNotStallNextCommitter(t *testing.T) {
	l, err := NewLog(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	l.StartGroupCommit(GroupCommitConfig{MaxDelay: time.Hour, MaxBatchBytes: 1})
	defer l.StopGroupCommit()
	// Simulate the leftover signal: a wake with no waiter behind it.
	l.gcWake <- struct{}{}
	time.Sleep(20 * time.Millisecond) // let the flusher consume it
	lsn, _ := l.Append(&Record{Type: RecCommit, TxnID: 1})
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(lsn) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("committer stalled behind a stale wake")
	}
}

// Committers arriving while the flusher is already lingering must still
// be able to cut the delay short via the byte trigger.
func TestGroupCommitBatchFullMidLingerCutsDelayShort(t *testing.T) {
	l, err := NewLog(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	l.StartGroupCommit(GroupCommitConfig{MaxDelay: time.Hour, MaxBatchBytes: 64})
	defer l.StopGroupCommit()
	// First committer: too small to trip the byte trigger, so the
	// flusher starts lingering with it queued.
	lsn1, _ := l.Append(&Record{Type: RecCommit, TxnID: 1})
	d1 := make(chan error, 1)
	go func() { d1 <- l.WaitDurable(lsn1) }()
	time.Sleep(20 * time.Millisecond) // flusher now mid-linger
	// Second committer pushes pending past MaxBatchBytes; its wake must
	// interrupt the linger.
	lsn2, _ := l.Append(&Record{Type: RecCommit, TxnID: 2, After: make([]byte, 128)})
	d2 := make(chan error, 1)
	go func() { d2 <- l.WaitDurable(lsn2) }()
	for _, d := range []chan error{d1, d2} {
		select {
		case err := <-d:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("mid-linger byte trigger did not cut the delay short")
		}
	}
}

func TestGroupCommitDeliversFlushErrors(t *testing.T) {
	fb := &FaultyBackend{Inner: NewMemBackend(), FailSyncsAfter: 1}
	l, err := NewLog(fb)
	if err != nil {
		t.Fatal(err)
	}
	l.StartGroupCommit(GroupCommitConfig{})
	defer l.StopGroupCommit()
	lsn, _ := l.Append(&Record{Type: RecCommit, TxnID: 1})
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatalf("first sync should succeed: %v", err)
	}
	lsn2, _ := l.Append(&Record{Type: RecCommit, TxnID: 2})
	if err := l.WaitDurable(lsn2); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected sync error, got %v", err)
	}
}

func TestAppendStatsCountOnlySuccesses(t *testing.T) {
	l, err := NewLog(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	big := Record{Type: RecHeapInsert, After: make([]byte, 0x10000000)} // over the frame limit
	if _, err := l.Append(&big); err == nil {
		t.Fatal("oversized record accepted")
	}
	if a, by := l.Stats().Appends.Load(), l.Stats().Bytes.Load(); a != 0 || by != 0 {
		t.Fatalf("failed append counted: appends=%d bytes=%d", a, by)
	}
	rec := Record{Type: RecCommit, TxnID: 1}
	if _, err := l.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if a := l.Stats().Appends.Load(); a != 1 {
		t.Fatalf("appends = %d, want 1", a)
	}
	wantBytes := int64(len(rec.encode(nil)) + frameHeader)
	if by := l.Stats().Bytes.Load(); by != wantBytes {
		t.Fatalf("bytes = %d, want %d", by, wantBytes)
	}
}

func TestFlushBackendFailureKeepsStatsAndRetries(t *testing.T) {
	fb := &FaultyBackend{Inner: NewMemBackend(), FailAppendsAfter: 1}
	l, err := NewLog(fb)
	if err != nil {
		t.Fatal(err)
	}
	lsn, _ := l.Append(&Record{Type: RecCommit, TxnID: 1})
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	lsn2, _ := l.Append(&Record{Type: RecCommit, TxnID: 2})
	if err := l.Flush(lsn2); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected append error, got %v", err)
	}
	if f := l.Stats().Flushes.Load(); f != 1 {
		t.Fatalf("failed flush counted: flushes = %d, want 1", f)
	}
	if l.FlushedLSN() < lsn || l.FlushedLSN() >= lsn2 {
		t.Fatalf("flushed LSN %d out of range [%d,%d)", l.FlushedLSN(), lsn, lsn2)
	}
	// The record stayed buffered: clearing the fault lets a retry land it.
	fb.FailAppendsAfter = 0
	if err := l.Flush(lsn2); err != nil {
		t.Fatal(err)
	}
	if f := l.Stats().Flushes.Load(); f != 2 {
		t.Fatalf("flushes = %d, want 2", f)
	}
}

func TestFlushSkipsRedundantSync(t *testing.T) {
	b := &syncCountingBackend{MemBackend: NewMemBackend()}
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	lsn, _ := l.Append(&Record{Type: RecCommit, TxnID: 1})
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	// Covered LSN: no buffer swap, no sync.
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	if s := b.syncs.Load(); s != 1 {
		t.Fatalf("redundant flush synced: %d syncs, want 1", s)
	}
}

func TestTornTailErrorIsErrTorn(t *testing.T) {
	b := NewMemBackend()
	l, _ := NewLog(b)
	if _, err := l.Append(&Record{Type: RecCommit, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	_ = l.FlushAll()
	b.mu.Lock()
	b.buf = append(b.buf, 0xEE, 0x01, 0x02) // torn frame header
	b.mu.Unlock()
	r, err := l.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record should read fine: %v", err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTorn) {
		t.Fatalf("torn tail should wrap ErrTorn, got %v", err)
	}
}

func TestFaultyBackendTornAppend(t *testing.T) {
	inner := NewMemBackend()
	fb := &FaultyBackend{Inner: inner, FailAppendsAfter: 1, TornBytes: 5}
	l, err := NewLog(fb)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Type: RecHeapInsert, TxnID: 1, RID: rid.NewPhysical(1, 2, 3), After: []byte("first")}
	if _, err := l.Append(&rec); err != nil {
		t.Fatal(err)
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecCommit, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.FlushAll(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected failure, got %v", err)
	}
	// The medium holds the first frame plus 5 torn bytes; a reader over
	// it sees one record then a torn tail.
	l2, err := NewLog(inner)
	if err != nil {
		t.Fatal(err)
	}
	r, err := l2.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Next()
	if err != nil || got.TxnID != 1 || string(got.After) != "first" {
		t.Fatalf("first record: %+v, %v", got, err)
	}
	if _, err := r.Next(); !errors.Is(err, ErrTorn) {
		t.Fatalf("want ErrTorn at torn tail, got %v", err)
	}
}
