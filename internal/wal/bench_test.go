package wal

import (
	"testing"

	"repro/internal/rid"
)

func BenchmarkAppend(b *testing.B) {
	l, err := NewLog(NewMemBackend())
	if err != nil {
		b.Fatal(err)
	}
	rec := Record{Type: RecHeapInsert, TxnID: 1, Table: 2,
		RID: rid.NewPhysical(1, 2, 3), After: make([]byte, 128)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(&rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendFlushGroupCommit(b *testing.B) {
	l, err := NewLog(NewMemBackend())
	if err != nil {
		b.Fatal(err)
	}
	rec := Record{Type: RecIMRSInsert, TxnID: 1, After: make([]byte, 128)}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := rec
			lsn, err := l.Append(&r)
			if err != nil {
				b.Fatal(err)
			}
			if err := l.Flush(lsn); err != nil {
				b.Fatal(err)
			}
		}
	})
}
