package wal

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rid"
)

func backends(t *testing.T) map[string]Backend {
	t.Helper()
	fb, err := OpenFileBackend(filepath.Join(t.TempDir(), "test.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fb.Close() })
	return map[string]Backend{"mem": NewMemBackend(), "file": fb}
}

func TestAppendFlushRead(t *testing.T) {
	for name, b := range backends(t) {
		t.Run(name, func(t *testing.T) {
			l, err := NewLog(b)
			if err != nil {
				t.Fatal(err)
			}
			recs := []Record{
				{Type: RecHeapInsert, TxnID: 1, Table: 2, RID: rid.NewPhysical(1, 2, 3), After: []byte("row1")},
				{Type: RecHeapUpdate, TxnID: 1, Table: 2, RID: rid.NewPhysical(1, 2, 3), Before: []byte("row1"), After: []byte("row2")},
				{Type: RecCommit, TxnID: 1, CommitTS: 77},
			}
			var lsns []uint64
			for i := range recs {
				lsn, err := l.Append(&recs[i])
				if err != nil {
					t.Fatal(err)
				}
				lsns = append(lsns, lsn)
			}
			if err := l.Flush(lsns[len(lsns)-1]); err != nil {
				t.Fatal(err)
			}
			if l.FlushedLSN() < lsns[len(lsns)-1] {
				t.Fatal("flushed LSN did not advance")
			}
			r, err := l.NewReader(0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; ; i++ {
				rec, err := r.Next()
				if err == io.EOF {
					if i != len(recs) {
						t.Fatalf("read %d records, want %d", i, len(recs))
					}
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				want := recs[i]
				if rec.Type != want.Type || rec.TxnID != want.TxnID || rec.Table != want.Table ||
					rec.RID != want.RID || rec.CommitTS != want.CommitTS ||
					string(rec.Before) != string(want.Before) || string(rec.After) != string(want.After) {
					t.Fatalf("record %d mismatch: %+v vs %+v", i, rec, want)
				}
				if rec.LSN != lsns[i] {
					t.Fatalf("record %d LSN %d, want %d", i, rec.LSN, lsns[i])
				}
			}
		})
	}
}

func TestReaderFromLSN(t *testing.T) {
	l, err := NewLog(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(&Record{Type: RecHeapInsert, TxnID: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	r, err := l.NewReader(lsns[5])
	if err != nil {
		t.Fatal(err)
	}
	rec, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.TxnID != 5 {
		t.Fatalf("first record from LSN[5] has TxnID %d, want 5", rec.TxnID)
	}
}

func TestLogReopenContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reopen.log")
	b, err := OpenFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecCommit, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	b2, err := OpenFileBackend(path)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewLog(b2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if _, err := l2.Append(&Record{Type: RecCommit, TxnID: 2}); err != nil {
		t.Fatal(err)
	}
	r, err := l2.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	var txns []uint64
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		txns = append(txns, rec.TxnID)
	}
	if len(txns) != 2 || txns[0] != 1 || txns[1] != 2 {
		t.Fatalf("txns across reopen = %v", txns)
	}
}

func TestCorruptionDetected(t *testing.T) {
	b := NewMemBackend()
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecCommit, TxnID: 9, After: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the body.
	b.mu.Lock()
	b.buf[frameHeader+3] ^= 0xFF
	b.mu.Unlock()
	r, err := l.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("corrupt record not detected: %v", err)
	}
}

func TestFlushIdempotent(t *testing.T) {
	l, err := NewLog(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(&Record{Type: RecCommit})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Flush(lsn); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Stats().Flushes.Load(); got != 1 {
		t.Fatalf("flushes = %d, want 1 (idempotent)", got)
	}
}

func TestConcurrentAppenders(t *testing.T) {
	l, err := NewLog(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := Record{Type: RecHeapInsert, TxnID: uint64(w), After: []byte(fmt.Sprintf("w%d-%d", w, i))}
				lsn, err := l.Append(&rec)
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.Flush(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	r, err := l.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	perWorkerSeq := map[uint64]int{}
	lastLSN := uint64(0)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.LSN <= lastLSN {
			t.Fatal("LSNs not strictly increasing")
		}
		lastLSN = rec.LSN
		perWorkerSeq[rec.TxnID]++
		count++
	}
	if count != workers*per {
		t.Fatalf("read %d records, want %d", count, workers*per)
	}
	for w, n := range perWorkerSeq {
		if n != per {
			t.Fatalf("worker %d has %d records", w, n)
		}
	}
}

func TestRecordEncodeDecodeProperty(t *testing.T) {
	f := func(typ uint8, txn uint64, table uint32, ridBits uint64, cts uint64, before, after []byte) bool {
		in := Record{
			Type: RecType(typ), TxnID: txn, Table: table, RID: rid.RID(ridBits),
			CommitTS: cts, Before: before, After: after,
		}
		out, err := decodeRecord(in.encode(nil))
		if err != nil {
			return false
		}
		return out.Type == in.Type && out.TxnID == in.TxnID && out.Table == in.Table &&
			out.RID == in.RID && out.CommitTS == in.CommitTS &&
			string(out.Before) == string(before) && string(out.After) == string(after)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailStopsIteration(t *testing.T) {
	b := NewMemBackend()
	l, _ := NewLog(b)
	if _, err := l.Append(&Record{Type: RecCommit, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	_ = l.FlushAll()
	// Simulate a torn write: append garbage that looks like a frame start.
	b.mu.Lock()
	b.buf = append(b.buf, 0xEE, 0x00, 0x00, 0x00) // partial header
	b.mu.Unlock()
	r, err := l.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != nil {
		t.Fatalf("first record should read fine: %v", err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Fatalf("torn tail should error, got %v", err)
	}
}
