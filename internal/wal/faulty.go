package wal

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is returned by FaultyBackend's injected failures.
var ErrInjected = errors.New("wal: injected backend fault")

// FaultyBackend wraps a Backend and kills it after a trigger count of
// appends or syncs — failure injection for group-commit error paths and
// crash-recovery tests. When an append is killed, TornBytes of the batch
// are still written to the inner backend first, modelling a power cut
// mid-write that leaves a torn final frame on the medium.
type FaultyBackend struct {
	Inner Backend

	// FailAppendsAfter: once that many appends have succeeded, every
	// subsequent append fails (0 disables).
	FailAppendsAfter int64
	// TornBytes is the prefix of the first failed append that still
	// reaches the inner backend (a torn write).
	TornBytes int
	// FailSyncsAfter: once that many syncs have succeeded, every
	// subsequent sync fails (0 disables).
	FailSyncsAfter int64

	appends atomic.Int64
	syncs   atomic.Int64
	torn    atomic.Bool
	dead    atomic.Bool
}

// Append implements Backend.
func (b *FaultyBackend) Append(p []byte) (int64, error) {
	if b.FailAppendsAfter > 0 && b.appends.Add(1) > b.FailAppendsAfter {
		if b.TornBytes > 0 && b.torn.CompareAndSwap(false, true) {
			n := b.TornBytes
			if n > len(p) {
				n = len(p)
			}
			_, _ = b.Inner.Append(p[:n])
		}
		b.dead.Store(true)
		return 0, ErrInjected
	}
	return b.Inner.Append(p)
}

// Truncate implements Backend. Once a failure has been injected the
// backend is a dead device and refuses truncation too: a poisoned log
// cannot scrub its torn bytes, so recovery's tail repair must discard
// them at the next open — exactly the hard case crash tests want.
func (b *FaultyBackend) Truncate(n int64) error {
	if b.dead.Load() {
		return ErrInjected
	}
	return b.Inner.Truncate(n)
}

// ReadAt implements Backend.
func (b *FaultyBackend) ReadAt(p []byte, off int64) (int, error) { return b.Inner.ReadAt(p, off) }

// Size implements Backend.
func (b *FaultyBackend) Size() (int64, error) { return b.Inner.Size() }

// Sync implements Backend.
func (b *FaultyBackend) Sync() error {
	if b.FailSyncsAfter > 0 && b.syncs.Add(1) > b.FailSyncsAfter {
		b.dead.Store(true)
		return ErrInjected
	}
	return b.Inner.Sync()
}

// Close implements Backend.
func (b *FaultyBackend) Close() error { return b.Inner.Close() }
