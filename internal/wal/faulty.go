package wal

import (
	"errors"
	"sync/atomic"

	"repro/internal/fault"
)

// ErrInjected is returned by FaultyBackend's injected failures.
var ErrInjected = errors.New("wal: injected backend fault")

// ErrInjectedTransient is the transient-classified injected failure.
var ErrInjectedTransient = fault.MarkTransient(errors.New("wal: injected transient backend fault"))

// FaultyBackend wraps a Backend and kills it after a trigger count of
// appends or syncs — failure injection for group-commit error paths and
// crash-recovery tests. When an append is killed, TornBytes of the batch
// are still written to the inner backend first, modelling a power cut
// mid-write that leaves a torn final frame on the medium.
//
// On top of the hard (device-died) mode, AddTransientAppendFaults and
// AddTransientSyncFaults arm a budget of transient glitches: the next N
// appends/syncs fail with a transient-marked error BEFORE touching the
// inner backend (no torn bytes, no dead flag), then the device heals.
// This is the mode the WAL flush retry layer is tested against.
type FaultyBackend struct {
	Inner Backend

	// FailAppendsAfter: once that many appends have succeeded, every
	// subsequent append fails (0 disables).
	FailAppendsAfter int64
	// TornBytes is the prefix of the first failed append that still
	// reaches the inner backend (a torn write).
	TornBytes int
	// FailSyncsAfter: once that many syncs have succeeded, every
	// subsequent sync fails (0 disables).
	FailSyncsAfter int64

	appends atomic.Int64
	syncs   atomic.Int64
	torn    atomic.Bool
	dead    atomic.Bool

	transientAppends atomic.Int64
	transientSyncs   atomic.Int64
	injected         atomic.Int64
	killed           atomic.Bool
}

// Kill marks the device dead immediately: every subsequent append and
// sync fails hard (permanent), independent of the After counters. Lets
// tests trigger the device death at an exact point in a workload instead
// of budgeting operation counts.
func (b *FaultyBackend) Kill() { b.killed.Store(true); b.dead.Store(true) }

// AddTransientAppendFaults arms the next n appends to fail transiently.
func (b *FaultyBackend) AddTransientAppendFaults(n int64) { b.transientAppends.Add(n) }

// AddTransientSyncFaults arms the next n syncs to fail transiently.
func (b *FaultyBackend) AddTransientSyncFaults(n int64) { b.transientSyncs.Add(n) }

// Injected returns the total number of faults injected so far.
func (b *FaultyBackend) Injected() int64 { return b.injected.Load() }

// takeBudget consumes one unit of a transient budget, never going below
// zero under concurrent callers.
func takeBudget(budget *atomic.Int64) bool {
	for {
		n := budget.Load()
		if n <= 0 {
			return false
		}
		if budget.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// Append implements Backend.
func (b *FaultyBackend) Append(p []byte) (int64, error) {
	if b.killed.Load() {
		b.injected.Add(1)
		return 0, ErrInjected
	}
	if b.FailAppendsAfter > 0 && b.appends.Add(1) > b.FailAppendsAfter {
		if b.TornBytes > 0 && b.torn.CompareAndSwap(false, true) {
			n := b.TornBytes
			if n > len(p) {
				n = len(p)
			}
			_, _ = b.Inner.Append(p[:n])
		}
		b.dead.Store(true)
		b.injected.Add(1)
		return 0, ErrInjected
	}
	if takeBudget(&b.transientAppends) {
		b.injected.Add(1)
		return 0, ErrInjectedTransient
	}
	return b.Inner.Append(p)
}

// Truncate implements Backend. Once a failure has been injected the
// backend is a dead device and refuses truncation too: a poisoned log
// cannot scrub its torn bytes, so recovery's tail repair must discard
// them at the next open — exactly the hard case crash tests want.
func (b *FaultyBackend) Truncate(n int64) error {
	if b.dead.Load() {
		return ErrInjected
	}
	return b.Inner.Truncate(n)
}

// ReadAt implements Backend.
func (b *FaultyBackend) ReadAt(p []byte, off int64) (int, error) { return b.Inner.ReadAt(p, off) }

// Size implements Backend.
func (b *FaultyBackend) Size() (int64, error) { return b.Inner.Size() }

// Sync implements Backend.
func (b *FaultyBackend) Sync() error {
	if b.killed.Load() {
		b.injected.Add(1)
		return ErrInjected
	}
	if b.FailSyncsAfter > 0 && b.syncs.Add(1) > b.FailSyncsAfter {
		b.dead.Store(true)
		b.injected.Add(1)
		return ErrInjected
	}
	if takeBudget(&b.transientSyncs) {
		b.injected.Add(1)
		return ErrInjectedTransient
	}
	return b.Inner.Sync()
}

// Close implements Backend.
func (b *FaultyBackend) Close() error { return b.Inner.Close() }
