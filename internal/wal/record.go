package wal

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rid"
)

// RecType enumerates log record types across both logs.
type RecType uint8

// Record types. Heap* records appear in syslogs; IMRS* records appear in
// sysimrslogs. Commit/Abort appear in syslogs; IMRSCommit is the commit
// marker in sysimrslogs (a transaction that touched both stores writes
// both markers, syslogs first — the lock-step recovery order relies on
// it).
const (
	RecInvalid RecType = iota
	RecHeapInsert
	RecHeapUpdate
	RecHeapDelete
	RecCommit
	RecAbort
	RecCheckpoint
	RecIMRSInsert
	RecIMRSUpdate
	RecIMRSDelete
	RecIMRSCommit
	// Cold-store records (syslogs): SegFreeze carries a whole encoded
	// column segment in After; SegKill marks one segment-resident row dead
	// (un-freeze or delete). Both are gated on their transaction's
	// RecCommit, like every other syslogs record.
	RecSegFreeze
	RecSegKill
	// Two-phase-commit records (syslogs). Prepare marks a participant's
	// half of a cross-shard transaction durable-but-undecided: TxnID is
	// the local transaction, RID carries the global transaction id, Table
	// the coordinator shard index, and CommitTS the timestamp the
	// transaction will publish at if the decision is commit. Decide is the
	// coordinator's durable decision for a global transaction (RID/TxnID =
	// global id, Aux=1 commit, Aux=0 abort); its presence in the
	// coordinator's syslogs IS the commit point — a prepare with no
	// matching decide is presumed aborted.
	RecPrepare
	RecDecide
)

// String implements fmt.Stringer.
func (t RecType) String() string {
	switch t {
	case RecHeapInsert:
		return "heap-insert"
	case RecHeapUpdate:
		return "heap-update"
	case RecHeapDelete:
		return "heap-delete"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	case RecCheckpoint:
		return "checkpoint"
	case RecIMRSInsert:
		return "imrs-insert"
	case RecIMRSUpdate:
		return "imrs-update"
	case RecIMRSDelete:
		return "imrs-delete"
	case RecIMRSCommit:
		return "imrs-commit"
	case RecSegFreeze:
		return "seg-freeze"
	case RecSegKill:
		return "seg-kill"
	case RecPrepare:
		return "prepare"
	case RecDecide:
		return "decide"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is a log record. A single struct covers every type; unused
// fields encode as empty. LSN is assigned by Log.Append.
type Record struct {
	Type     RecType
	LSN      uint64
	TxnID    uint64
	Table    uint32 // table id
	RID      rid.RID
	CommitTS uint64
	Aux      uint8  // record-specific detail (e.g. IMRS row origin)
	Before   []byte // undo image (Heap* only)
	After    []byte // redo image, or checkpoint metadata blob
}

// encode appends the record body (excluding framing) to dst.
func (r *Record) encode(dst []byte) []byte {
	dst = append(dst, byte(r.Type))
	dst = binary.LittleEndian.AppendUint64(dst, r.TxnID)
	dst = binary.LittleEndian.AppendUint32(dst, r.Table)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(r.RID))
	dst = binary.LittleEndian.AppendUint64(dst, r.CommitTS)
	dst = append(dst, r.Aux)
	dst = binary.AppendUvarint(dst, uint64(len(r.Before)))
	dst = append(dst, r.Before...)
	dst = binary.AppendUvarint(dst, uint64(len(r.After)))
	dst = append(dst, r.After...)
	return dst
}

// uvarintLen returns the minimal encoded width of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// decodeRecord parses a record body.
func decodeRecord(buf []byte) (Record, error) {
	var r Record
	if len(buf) < 1+8+4+8+8+1 {
		return r, fmt.Errorf("wal: record body too short (%d bytes)", len(buf))
	}
	pos := 0
	r.Type = RecType(buf[pos])
	pos++
	r.TxnID = binary.LittleEndian.Uint64(buf[pos:])
	pos += 8
	r.Table = binary.LittleEndian.Uint32(buf[pos:])
	pos += 4
	r.RID = rid.RID(binary.LittleEndian.Uint64(buf[pos:]))
	pos += 8
	r.CommitTS = binary.LittleEndian.Uint64(buf[pos:])
	pos += 8
	r.Aux = buf[pos]
	pos++
	for _, field := range []*[]byte{&r.Before, &r.After} {
		n, w := binary.Uvarint(buf[pos:])
		if w <= 0 || w != uvarintLen(n) {
			// Only minimal-width varints are valid: encode never emits
			// padded ones, so anything else is corruption (and accepting
			// them would break the decode→encode identity).
			return r, fmt.Errorf("wal: truncated varlen field")
		}
		pos += w
		// Compare in uint64 space: a hostile length close to 2^64 would
		// wrap an int addition and sneak past a pos+n > len check.
		if n > uint64(len(buf)-pos) {
			return r, fmt.Errorf("wal: truncated varlen field")
		}
		if n > 0 {
			*field = append([]byte(nil), buf[pos:pos+int(n)]...)
		}
		pos += int(n)
	}
	if pos != len(buf) {
		return r, fmt.Errorf("wal: %d trailing bytes in record", len(buf)-pos)
	}
	return r, nil
}
