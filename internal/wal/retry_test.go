package wal

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/fault"
)

// Flush must ride through a budget of transient backend faults without
// losing frames and, critically, without poisoning the log.
func TestFlushRetriesTransientBackendFaults(t *testing.T) {
	fb := &FaultyBackend{Inner: NewMemBackend()}
	l, err := NewLog(fb)
	if err != nil {
		t.Fatal(err)
	}
	r := fault.NewRetrier(fault.Policy{MaxAttempts: 4})
	r.Sleep = func(time.Duration) {}
	l.SetRetrier(r)

	rec := &Record{Type: RecCommit, TxnID: 7}
	if _, err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	fb.AddTransientAppendFaults(2)
	fb.AddTransientSyncFaults(2)
	if err := l.FlushAll(); err != nil {
		t.Fatalf("flush through transient faults: %v", err)
	}
	if perr := l.Poisoned(); perr != nil {
		t.Fatalf("log poisoned by transient faults: %v", perr)
	}
	if s := r.Stats(); s.Retries != 4 || s.Recovered != 2 {
		t.Fatalf("retrier stats = %+v", s)
	}

	// The flushed frame must be intact.
	rd, err := l.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != RecCommit || got.TxnID != 7 {
		t.Fatalf("read back %+v", got)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// Group commit sits on top of Flush, so a transient glitch during a
// coalesced commit flush must also be invisible to committers.
func TestGroupCommitSurvivesTransientFaults(t *testing.T) {
	fb := &FaultyBackend{Inner: NewMemBackend()}
	l, err := NewLog(fb)
	if err != nil {
		t.Fatal(err)
	}
	r := fault.NewRetrier(fault.Policy{MaxAttempts: 5})
	r.Sleep = func(time.Duration) {}
	l.SetRetrier(r)
	l.StartGroupCommit(GroupCommitConfig{})
	defer l.StopGroupCommit()

	fb.AddTransientSyncFaults(3)
	lsn, err := l.Append(&Record{Type: RecCommit, TxnID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatalf("WaitDurable through transient faults: %v", err)
	}
	if perr := l.Poisoned(); perr != nil {
		t.Fatalf("log poisoned: %v", perr)
	}
}

// Exhausting the retry budget must surface the failure (and, on the
// commit path, still poison) rather than hang or succeed silently.
func TestFlushExhaustionSurfaces(t *testing.T) {
	fb := &FaultyBackend{Inner: NewMemBackend()}
	l, err := NewLog(fb)
	if err != nil {
		t.Fatal(err)
	}
	r := fault.NewRetrier(fault.Policy{MaxAttempts: 2})
	r.Sleep = func(time.Duration) {}
	l.SetRetrier(r)

	if _, err := l.Append(&Record{Type: RecCommit, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	fb.AddTransientSyncFaults(100)
	err = l.FlushAll()
	if !errors.Is(err, fault.ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
}

// Close must release the backend even when the log is poisoned, and the
// aggregate error must still carry the poisoning.
func TestCloseClosesBackendWhenPoisoned(t *testing.T) {
	fb := &FaultyBackend{Inner: NewMemBackend(), FailSyncsAfter: 0}
	l, err := NewLog(fb)
	if err != nil {
		t.Fatal(err)
	}
	l.poison(errors.New("boom"))
	closed := &closeTrackingBackend{Backend: fb}
	l.backend = closed
	err = l.Close()
	if !errors.Is(err, ErrPoisoned) {
		t.Fatalf("Close error = %v, want ErrPoisoned in the chain", err)
	}
	if !closed.closed {
		t.Fatal("Close must close the backend even when poisoned")
	}
}

type closeTrackingBackend struct {
	Backend
	closed bool
}

func (b *closeTrackingBackend) Close() error {
	b.closed = true
	return b.Backend.Close()
}
