package wal

import (
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"
)

// flakySyncBackend fails Sync on demand but — unlike FaultyBackend —
// stays alive otherwise, so poison's truncate-back-to-watermark can
// succeed.
type flakySyncBackend struct {
	*MemBackend
	fail atomic.Bool
}

func (b *flakySyncBackend) Sync() error {
	if b.fail.Load() {
		return ErrInjected
	}
	return nil
}

func readAll(t *testing.T, b Backend) []Record {
	t.Helper()
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	r, err := l.NewReader(0)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return recs
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		recs = append(recs, rec)
	}
}

func TestRepairTailTruncatesTornFrame(t *testing.T) {
	b := NewMemBackend()
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 2; id++ {
		if _, err := l.Append(&Record{Type: RecCommit, TxnID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	good, _ := b.Size()
	if _, err := b.Append([]byte{0xDE, 0xAD, 0xBE}); err != nil { // torn header
		t.Fatal(err)
	}

	l2, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	n, err := l2.RepairTail()
	if err != nil {
		t.Fatalf("RepairTail: %v", err)
	}
	if n != 3 {
		t.Fatalf("discarded %d bytes, want 3", n)
	}
	if size, _ := b.Size(); size != good {
		t.Fatalf("backend size %d after repair, want %d", size, good)
	}
	// The repaired log appends at the true tail: a third record lands
	// where the garbage sat, and a full scan sees all three records.
	if _, err := l2.Append(&Record{Type: RecCommit, TxnID: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l2.FlushAll(); err != nil {
		t.Fatal(err)
	}
	recs := readAll(t, b)
	if len(recs) != 3 || recs[2].TxnID != 3 {
		t.Fatalf("read %d records after repair+append, want 3 ending in TxnID 3: %+v", len(recs), recs)
	}
}

func TestRepairTailTruncatesCutShortBody(t *testing.T) {
	b := NewMemBackend()
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecCommit, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	good, _ := b.Size()
	// A complete header claiming a 100-byte body, with only 4 body bytes
	// on the medium: the batch write died mid-body.
	if _, err := b.Append([]byte{100, 0, 0, 0, 1, 2, 3, 4, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	l2, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.RepairTail(); err != nil {
		t.Fatalf("RepairTail: %v", err)
	}
	if size, _ := b.Size(); size != good {
		t.Fatalf("backend size %d after repair, want %d", size, good)
	}
}

func TestRepairTailCleanLogIsNoop(t *testing.T) {
	b := NewMemBackend()
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Type: RecCommit, TxnID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	n, err := l.RepairTail()
	if err != nil || n != 0 {
		t.Fatalf("clean log repair = (%d, %v), want (0, nil)", n, err)
	}
}

func TestRepairTailRejectsMidLogCorruption(t *testing.T) {
	b := NewMemBackend()
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	for id := uint64(1); id <= 3; id++ {
		if _, err := l.Append(&Record{Type: RecCommit, TxnID: id}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Flip a body byte of the FIRST frame: its CRC fails while two valid
	// frames follow — a tear that cannot be a crash artifact.
	b.mu.Lock()
	b.buf[frameHeader] ^= 0xFF
	b.mu.Unlock()
	l2, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.RepairTail(); err == nil {
		t.Fatal("mid-log corruption repaired as a tail tear")
	}
}

func TestGroupFlushFailurePoisonsLog(t *testing.T) {
	b := &flakySyncBackend{MemBackend: NewMemBackend()}
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	l.StartGroupCommit(GroupCommitConfig{})
	defer l.StopGroupCommit()

	lsn1, _ := l.Append(&Record{Type: RecCommit, TxnID: 1})
	if err := l.WaitDurable(lsn1); err != nil {
		t.Fatal(err)
	}
	durable, _ := b.Size()

	b.fail.Store(true)
	lsn2, _ := l.Append(&Record{Type: RecCommit, TxnID: 2})
	if err := l.WaitDurable(lsn2); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected sync error, got %v", err)
	}

	// The log is poisoned: the rolled-back committer's frame must never
	// become durable, so appends and flushes are refused...
	if _, err := l.Append(&Record{Type: RecCommit, TxnID: 3}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poison: %v, want ErrPoisoned", err)
	}
	b.fail.Store(false) // even once the device heals
	if err := l.Flush(lsn2); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("flush after poison: %v, want ErrPoisoned", err)
	}
	// ...and the backend was scrubbed back to the durable watermark.
	if size, _ := b.Size(); size != durable {
		t.Fatalf("backend holds %d bytes after poison, want %d (durable watermark)", size, durable)
	}
	recs := readAll(t, b.MemBackend)
	if len(recs) != 1 || recs[0].TxnID != 1 {
		t.Fatalf("medium holds %+v, want only the acknowledged record", recs)
	}
}

func TestFallbackFlushFailurePoisonsLog(t *testing.T) {
	b := &flakySyncBackend{MemBackend: NewMemBackend()}
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	// No pipeline: WaitDurable flushes directly; a failure there is a
	// failed commit all the same.
	b.fail.Store(true)
	lsn, _ := l.Append(&Record{Type: RecCommit, TxnID: 1})
	if err := l.WaitDurable(lsn); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected sync error, got %v", err)
	}
	if _, err := l.Append(&Record{Type: RecCommit, TxnID: 2}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after poison: %v, want ErrPoisoned", err)
	}
	if size, _ := b.Size(); size != 0 {
		t.Fatalf("backend holds %d bytes, want 0: nothing was ever acknowledged", size)
	}
}

func TestAbortGroupCommitIsCrashExact(t *testing.T) {
	b := NewMemBackend()
	l, err := NewLog(b)
	if err != nil {
		t.Fatal(err)
	}
	l.StartGroupCommit(GroupCommitConfig{MaxDelay: time.Hour})
	lsn, _ := l.Append(&Record{Type: RecCommit, TxnID: 1})
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(lsn) }()
	time.Sleep(20 * time.Millisecond) // let the waiter enqueue
	l.AbortGroupCommit()
	select {
	case err := <-done:
		if !errors.Is(err, ErrHalted) {
			t.Fatalf("queued waiter got %v, want ErrHalted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter still blocked after AbortGroupCommit")
	}
	if size, _ := b.Size(); size != 0 {
		t.Fatalf("abort flushed %d bytes; a crash would have flushed none", size)
	}
	// The commit path stays dead: no fallback flush may run either.
	if err := l.WaitDurable(lsn); !errors.Is(err, ErrHalted) {
		t.Fatalf("WaitDurable after abort: %v, want ErrHalted", err)
	}
	if size, _ := b.Size(); size != 0 {
		t.Fatalf("post-abort WaitDurable flushed %d bytes", size)
	}
}
